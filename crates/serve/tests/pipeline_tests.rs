//! Candidate-pipeline integration tests: equivalence with the legacy
//! chain, provenance-backed explanations, filter behaviour, and (with
//! `--features testing`) availability under a panicking source.

use rm_core::bpr::{Bpr, BprConfig};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::Recommender;
use rm_datagen::Preset;
use rm_dataset::ids::UserIdx;
use rm_dataset::interactions::Interactions;
use rm_dataset::summary::SummaryFields;
use rm_dataset::Corpus;
use rm_embed::EncoderConfig;
use rm_eval::harness::Harness;
use rm_serve::engine::{EngineConfig, ModelSlot, ServingEngine};
use rm_serve::pipeline::{
    AlreadyBorrowedFilter, BookGenres, DiversityCapFilter, GenreFilter, Reason, SourceId,
};
use rm_serve::registry::{ArtifactRegistry, Manifest};
use std::path::PathBuf;
use std::sync::Arc;

fn unique_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rm-serve-pipeline-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Trained Tiny-preset artifacts plus the corpus (for genre lookups) and
/// the directly-trained BPR (the pre-persistence reference model).
struct Fixture {
    corpus: Corpus,
    train: Interactions,
    bpr: Bpr,
    registry: ArtifactRegistry,
}

fn train_fixture(tag: &str) -> Fixture {
    let h = Harness::generate(11, Preset::Tiny);
    let train = h.split.train.clone();
    let mut bpr = Bpr::new(BprConfig {
        factors: 4,
        epochs: 2,
        ..BprConfig::default()
    });
    bpr.fit(&train);
    let mut most_read = MostReadItems::new();
    most_read.fit(&train);
    let mut closest =
        ClosestItems::from_corpus(&h.corpus, SummaryFields::BEST, EncoderConfig::default());
    closest.fit(&train);
    let registry = ArtifactRegistry::new(unique_dir(tag));
    registry
        .save(
            &Manifest {
                epoch: 1,
                fields: SummaryFields::BEST,
            },
            bpr.model().expect("fitted"),
            &most_read,
            closest.store(),
            None,
            None,
        )
        .expect("save artifacts");
    Fixture {
        corpus: h.corpus,
        train,
        bpr,
        registry,
    }
}

impl Fixture {
    fn cleanup(&self) {
        let _ = std::fs::remove_dir_all(self.registry.dir());
    }
}

/// The default-config pipeline (single CF source derived from the chain
/// head, no filters) must reproduce the direct BPR ranking bit for bit —
/// the artifact codec round-trips factors exactly, and the rank stage
/// re-scores the emitted pool with the same model and tie-breaks.
#[test]
fn default_pipeline_matches_direct_bpr_bit_for_bit() {
    let fx = train_fixture("equivalence");
    let engine = ServingEngine::load(&fx.registry, &fx.train, EngineConfig::default())
        .expect("engine loads");
    assert!(engine.degraded().is_empty());
    for k in [1usize, 5, 10] {
        for u in 0..fx.train.n_users() as u32 {
            let user = UserIdx(u);
            assert_eq!(
                engine.recommend(user, k),
                fx.bpr.recommend(user, k),
                "user {u} k {k}"
            );
        }
    }
    fx.cleanup();
}

/// Every recommendation carries one aligned provenance-backed
/// explanation; the default source is the CF model.
#[test]
fn every_recommendation_carries_an_explanation() {
    let fx = train_fixture("explained");
    let engine = ServingEngine::load(&fx.registry, &fx.train, EngineConfig::default())
        .expect("engine loads");
    let mut explained_users = 0;
    for u in 0..fx.train.n_users() as u32 {
        let (top, explanations) = engine.recommend_explained(UserIdx(u), 5);
        assert_eq!(top.len(), explanations.len(), "user {u}");
        for (b, ex) in top.iter().zip(&explanations) {
            assert_eq!(ex.book, *b, "user {u}: explanation aligned with answer");
            assert_eq!(ex.source, SourceId::CfNeighbours, "user {u}");
            assert_eq!(ex.reason, Reason::CfNeighbours, "user {u}");
            assert!(!ex.render(&|b| format!("book-{b}")).is_empty());
        }
        explained_users += usize::from(!top.is_empty());
    }
    assert!(explained_users > 0, "someone got recommendations");
    fx.cleanup();
}

/// With an explicit multi-source configuration the merge dedups by book
/// and the *first* source's provenance wins: a pool-sized Most Read
/// emission covers every unseen book, so every explanation is Most Read.
#[test]
fn merge_keeps_first_source_provenance() {
    let fx = train_fixture("first-wins");
    let config = EngineConfig::builder()
        .pipeline_sources(vec![ModelSlot::MostRead, ModelSlot::Bpr])
        .build()
        .expect("valid config");
    let engine = ServingEngine::load(&fx.registry, &fx.train, config).expect("engine loads");
    let user = (0..fx.train.n_users() as u32)
        .map(UserIdx)
        .find(|&u| !fx.train.seen(u).is_empty())
        .expect("user with history");
    let (top, explanations) = engine.recommend_explained(user, 8);
    assert!(!top.is_empty());
    for ex in &explanations {
        assert_eq!(ex.source, SourceId::MostRead, "first source wins the merge");
        assert!(
            matches!(ex.reason, Reason::MostRead { .. }),
            "{:?}",
            ex.reason
        );
    }
    // No duplicate books survive the merge.
    let mut books: Vec<u32> = top.clone();
    books.sort_unstable();
    books.dedup();
    assert_eq!(books.len(), top.len(), "merge dedups by book");
    fx.cleanup();
}

/// The already-borrowed filter is a no-op on source emissions (sources
/// never propose seen books) — answers must not change.
#[test]
fn already_borrowed_filter_never_changes_answers() {
    let fx = train_fixture("borrowed-noop");
    let plain = ServingEngine::load(&fx.registry, &fx.train, EngineConfig::default())
        .expect("engine loads");
    let filtered_config = EngineConfig::builder()
        .filter(Arc::new(AlreadyBorrowedFilter))
        .build()
        .expect("valid config");
    let filtered =
        ServingEngine::load(&fx.registry, &fx.train, filtered_config).expect("engine loads");
    for u in 0..fx.train.n_users() as u32 {
        assert_eq!(
            plain.recommend(UserIdx(u), 6),
            filtered.recommend(UserIdx(u), 6),
            "user {u}"
        );
    }
    fx.cleanup();
}

/// A genre allowlist restricts the pipeline's answers to that genre;
/// the diversity cap bounds how many books share one.
#[test]
fn genre_filters_shape_the_pool() {
    let fx = train_fixture("genres");
    let genres = Arc::new(BookGenres::from_corpus(&fx.corpus));
    // The most common primary genre keeps the filtered pool non-empty.
    let mut counts = std::collections::BTreeMap::new();
    for b in 0..genres.len() as u32 {
        if let Some(g) = genres.primary(b) {
            *counts.entry(g).or_insert(0usize) += 1;
        }
    }
    let (&top_genre, _) = counts
        .iter()
        .max_by_key(|(_, n)| **n)
        .expect("corpus has genres");

    let allow_config = EngineConfig::builder()
        .pipeline_sources(vec![ModelSlot::MostRead])
        .book_genres(Arc::clone(&genres))
        .filter(Arc::new(GenreFilter::new(vec![top_genre])))
        .build()
        .expect("valid config");
    let engine = ServingEngine::load(&fx.registry, &fx.train, allow_config).expect("engine loads");
    let mut shaped = 0;
    for u in 0..fx.train.n_users() as u32 {
        let (top, _) = engine.recommend_explained(UserIdx(u), 4);
        for &b in &top {
            assert_eq!(genres.primary(b), Some(top_genre), "user {u} book {b}");
        }
        shaped += usize::from(!top.is_empty());
    }
    assert!(shaped > 0, "the allowed genre served someone");

    let cap_config = EngineConfig::builder()
        .pipeline_sources(vec![ModelSlot::MostRead])
        .book_genres(Arc::clone(&genres))
        .filter(Arc::new(DiversityCapFilter::new(1)))
        .build()
        .expect("valid config");
    let capped = ServingEngine::load(&fx.registry, &fx.train, cap_config).expect("engine loads");
    for u in 0..fx.train.n_users() as u32 {
        let (top, _) = capped.recommend_explained(UserIdx(u), 6);
        let mut per_genre = std::collections::BTreeMap::new();
        for &b in &top {
            *per_genre.entry(genres.primary(b)).or_insert(0usize) += 1;
        }
        for (g, n) in per_genre {
            assert!(n <= 1, "user {u}: genre {g:?} appears {n} times");
        }
    }
    fx.cleanup();
}

/// Retrains the Tiny fixture and publishes it twice: once bare, once
/// with the IVF ANN artifact built the way `train --out` builds it.
fn ann_registries(tag: &str) -> (Fixture, ArtifactRegistry) {
    let fx = train_fixture(tag);
    let h = Harness::generate(11, Preset::Tiny);
    let mut most_read = MostReadItems::new();
    most_read.fit(&fx.train);
    let mut closest =
        ClosestItems::from_corpus(&h.corpus, SummaryFields::BEST, EncoderConfig::default());
    closest.fit(&fx.train);
    let model = fx.bpr.model().expect("fitted");
    let ivf_config = rm_embed::IvfConfig::for_catalogue(fx.train.n_books());
    let ann = rm_embed::AnnArtifact {
        content: Some(rm_embed::IvfIndex::build(closest.store(), &ivf_config)),
        cf: Some(rm_embed::IvfIndex::build_mips(
            &model.item_factors,
            &ivf_config,
        )),
    };
    let with_ann = ArtifactRegistry::new(unique_dir(&format!("{tag}-ann")));
    with_ann
        .save(
            &Manifest {
                epoch: 1,
                fields: SummaryFields::BEST,
            },
            model,
            &most_read,
            closest.store(),
            Some(&ann),
            None,
        )
        .expect("save artifacts with ann");
    (fx, with_ann)
}

/// At `nprobe = usize::MAX` (clamped to every posting list) the
/// ANN-accelerated sources see the full catalogue as candidates and
/// re-score them with the exact kernels, so the whole pipeline — CF and
/// content-similar sources both — must be bit-identical to the
/// exact-scan engine, explanations included.
#[test]
fn ann_pipeline_at_full_nprobe_is_bit_identical_to_exact() {
    let (fx, with_ann) = ann_registries("ann-exact");
    let config = || {
        EngineConfig::builder()
            .pipeline_sources(vec![ModelSlot::Bpr, ModelSlot::ClosestItems])
            .ann_nprobe(usize::MAX)
            .build()
            .expect("valid config")
    };
    let exact = ServingEngine::load(&fx.registry, &fx.train, config()).expect("engine loads");
    let ann = ServingEngine::load(&with_ann, &fx.train, config()).expect("engine loads");
    assert!(!exact.ann_cf_active() && !exact.ann_content_active());
    assert!(ann.ann_cf_active() && ann.ann_content_active());
    assert!(ann.ann_notes().is_empty(), "{:?}", ann.ann_notes());
    assert!(ann.degraded().is_empty());
    for k in [1usize, 5, 10] {
        for u in 0..fx.train.n_users() as u32 {
            let user = UserIdx(u);
            let (top_e, ex_e) = exact.recommend_explained(user, k);
            let (top_a, ex_a) = ann.recommend_explained(user, k);
            assert_eq!(top_e, top_a, "user {u} k {k}");
            assert_eq!(ex_e, ex_a, "user {u} k {k}");
        }
    }
    fx.cleanup();
    let _ = std::fs::remove_dir_all(with_ann.dir());
}

/// At a small serving `nprobe` the answers may differ from the exact
/// scan, but the pipeline contract holds: never a seen book, never a
/// duplicate, and the engine still serves everyone it served before.
#[test]
fn ann_pipeline_at_small_nprobe_keeps_the_contract() {
    let (fx, with_ann) = ann_registries("ann-approx");
    let config = EngineConfig::builder()
        .pipeline_sources(vec![ModelSlot::Bpr, ModelSlot::ClosestItems])
        .ann_nprobe(1)
        .build()
        .expect("valid config");
    let engine = ServingEngine::load(&with_ann, &fx.train, config).expect("engine loads");
    let mut served = 0usize;
    for u in 0..fx.train.n_users() as u32 {
        let user = UserIdx(u);
        let top = engine.recommend(user, 6);
        let seen = fx.train.seen(user);
        for &b in &top {
            assert!(seen.binary_search(&b).is_err(), "user {u} reproposed {b}");
        }
        let mut dedup = top.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), top.len(), "user {u} duplicates");
        served += usize::from(!top.is_empty());
    }
    assert!(served > 0, "nprobe=1 still serves");
    fx.cleanup();
    let _ = std::fs::remove_dir_all(with_ann.dir());
}

/// An ANN artifact whose dimensions disagree with the installed models
/// is dropped (with a note) and the exact scans keep serving — ANN is
/// acceleration, never a new failure mode.
#[test]
fn mismatched_ann_artifact_is_dropped_with_note() {
    let fx = train_fixture("ann-mismatch");
    let h = Harness::generate(11, Preset::Tiny);
    let mut most_read = MostReadItems::new();
    most_read.fit(&fx.train);
    let mut closest =
        ClosestItems::from_corpus(&h.corpus, SummaryFields::BEST, EncoderConfig::default());
    closest.fit(&fx.train);
    let model = fx.bpr.model().expect("fitted");
    let ivf_config = rm_embed::IvfConfig {
        nlist: 4,
        iters: 2,
        seed: 3,
        train_sample: 0,
    };
    // Wrong catalogue size (content) and wrong factor width (cf).
    let bogus_store = rm_embed::EmbeddingStore::from_matrix(rm_sparse::DenseMatrix::gaussian(
        7,
        5,
        1.0,
        &mut rm_util::rng::rng_from_seed(1),
    ));
    let bogus_factors =
        rm_sparse::DenseMatrix::gaussian(9, 3, 0.5, &mut rm_util::rng::rng_from_seed(2));
    let bad_ann = rm_embed::AnnArtifact {
        content: Some(rm_embed::IvfIndex::build(&bogus_store, &ivf_config)),
        cf: Some(rm_embed::IvfIndex::build_mips(&bogus_factors, &ivf_config)),
    };
    let registry = ArtifactRegistry::new(unique_dir("ann-mismatch-reg"));
    registry
        .save(
            &Manifest {
                epoch: 1,
                fields: SummaryFields::BEST,
            },
            model,
            &most_read,
            closest.store(),
            Some(&bad_ann),
            None,
        )
        .expect("save artifacts");
    let engine =
        ServingEngine::load(&registry, &fx.train, EngineConfig::default()).expect("engine loads");
    assert!(!engine.ann_cf_active() && !engine.ann_content_active());
    assert_eq!(engine.ann_notes().len(), 2, "{:?}", engine.ann_notes());
    assert!(engine.degraded().is_empty(), "no slot degrades over ANN");
    // Exact path unaffected: matches the direct model.
    for u in 0..fx.train.n_users() as u32 {
        assert_eq!(
            engine.recommend(UserIdx(u), 5),
            fx.bpr.recommend(UserIdx(u), 5),
            "user {u}"
        );
    }
    fx.cleanup();
    let _ = std::fs::remove_dir_all(registry.dir());
}

#[cfg(feature = "testing")]
mod chaos {
    use super::*;
    use rm_serve::fault::{CallWindow, FaultPlan};

    /// Keeps injected panic reports out of the test output.
    fn silence_injected_panics() {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|s| s.contains("injected fault"));
            if !injected {
                previous(info);
            }
        }));
    }

    /// A primary source that panics on every call must not dent
    /// availability: the surviving sources and the degraded chain answer
    /// every request.
    #[test]
    fn panicking_primary_source_keeps_availability_at_one() {
        silence_injected_panics();
        let fx = train_fixture("source-panic");
        let config = EngineConfig::builder()
            .pipeline_sources(vec![ModelSlot::Bpr, ModelSlot::MostRead])
            .cache_capacity(0)
            .build()
            .expect("valid config");
        let plan = FaultPlan::none().panic_in(ModelSlot::Bpr, CallWindow::always());
        let engine = ServingEngine::load_with_faults(&fx.registry, &fx.train, config, plan)
            .expect("engine loads");

        let users: Vec<UserIdx> = (0..fx.train.n_users() as u32).map(UserIdx).collect();
        let answers = engine.recommend_batch(&users, 5);
        assert!(
            answers.iter().all(|a| a.len() == 5),
            "every request answered despite the panicking primary source"
        );
        let m = engine.metrics();
        assert_eq!(m.worker_panics, 0, "panics stay isolated in-source");
        assert!(
            m.panics[ModelSlot::Bpr.index()] > 0,
            "the fault actually fired"
        );
        assert!((m.availability() - 1.0).abs() < 1e-12);
        fx.cleanup();
    }
}
