//! Source filtering (Section 3 of the paper).
//!
//! * BCT: keep *monographs* and *manuscripts* written in Italian (the paper
//!   keeps 228 059 of 290 125 books);
//! * Anobii: keep items that are books written in Italian;
//! * Anobii ratings: drop ratings below 3, "since we assume that those are
//!   negative feedback" — the remaining readings are treated as uniform
//!   positive implicit feedback.

use crate::tables::{
    AnobiiItemRow, AnobiiItemsTable, BctBookRow, BctBooksTable, Language, RatingRow, RatingsTable,
};

/// Filtering thresholds. The defaults are the paper's choices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FilterConfig {
    /// Language to keep.
    pub language: Language,
    /// Minimum Anobii rating treated as positive feedback (inclusive).
    pub min_rating: u8,
}

impl Default for FilterConfig {
    fn default() -> Self {
        Self {
            language: Language::Italian,
            min_rating: 3,
        }
    }
}

/// Returns the BCT book rows surviving the type + language filter.
#[must_use]
pub fn filter_bct_books<'a>(
    table: &'a BctBooksTable,
    config: &FilterConfig,
) -> Vec<&'a BctBookRow> {
    table
        .rows
        .iter()
        .filter(|r| r.item_type.is_kept() && r.language == config.language)
        .collect()
}

/// Returns the Anobii item rows surviving the book + language filter.
#[must_use]
pub fn filter_anobii_items<'a>(
    table: &'a AnobiiItemsTable,
    config: &FilterConfig,
) -> Vec<&'a AnobiiItemRow> {
    table
        .rows
        .iter()
        .filter(|r| r.is_book && r.language == config.language)
        .collect()
}

/// Returns the rating rows surviving the positive-feedback filter.
#[must_use]
pub fn filter_ratings<'a>(table: &'a RatingsTable, config: &FilterConfig) -> Vec<&'a RatingRow> {
    table
        .rows
        .iter()
        .filter(|r| r.rating >= config.min_rating)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genre::GenreId;
    use crate::ids::{AnobiiItemId, AnobiiUserId, BctBookId, Day};
    use crate::tables::ItemType;

    fn bct_row(id: u32, item_type: ItemType, language: Language) -> BctBookRow {
        BctBookRow {
            book_id: BctBookId(id),
            authors: vec!["A. Autore".to_owned()],
            title: format!("Libro {id}"),
            item_type,
            language,
        }
    }

    fn anobii_row(id: u32, is_book: bool, language: Language) -> AnobiiItemRow {
        AnobiiItemRow {
            item_id: AnobiiItemId(id),
            authors: vec!["A. Autore".to_owned()],
            title: format!("Item {id}"),
            language,
            plot: String::new(),
            keywords: Vec::new(),
            genre_votes: vec![(GenreId(0), 3)],
            is_book,
        }
    }

    #[test]
    fn bct_filter_keeps_italian_monographs_and_manuscripts() {
        let table = BctBooksTable {
            rows: vec![
                bct_row(0, ItemType::Monograph, Language::Italian),
                bct_row(1, ItemType::Manuscript, Language::Italian),
                bct_row(2, ItemType::Dvd, Language::Italian),
                bct_row(3, ItemType::Monograph, Language::English),
                bct_row(4, ItemType::Other, Language::Other),
            ],
        };
        let kept = filter_bct_books(&table, &FilterConfig::default());
        let ids: Vec<u32> = kept.iter().map(|r| r.book_id.raw()).collect();
        assert_eq!(ids, vec![0, 1]);
    }

    #[test]
    fn anobii_filter_keeps_italian_books() {
        let table = AnobiiItemsTable {
            rows: vec![
                anobii_row(0, true, Language::Italian),
                anobii_row(1, false, Language::Italian),
                anobii_row(2, true, Language::French),
            ],
        };
        let kept = filter_anobii_items(&table, &FilterConfig::default());
        assert_eq!(kept.len(), 1);
        assert_eq!(kept[0].item_id.raw(), 0);
    }

    #[test]
    fn rating_filter_drops_below_three() {
        let table = RatingsTable {
            rows: (1..=5)
                .map(|r| RatingRow {
                    user_id: AnobiiUserId(0),
                    item_id: AnobiiItemId(r as u32),
                    rating: r,
                    date: Day(0),
                })
                .collect(),
        };
        let kept = filter_ratings(&table, &FilterConfig::default());
        let ratings: Vec<u8> = kept.iter().map(|r| r.rating).collect();
        assert_eq!(ratings, vec![3, 4, 5]);
    }

    #[test]
    fn custom_language_filter() {
        let table = BctBooksTable {
            rows: vec![bct_row(0, ItemType::Monograph, Language::English)],
        };
        let cfg = FilterConfig {
            language: Language::English,
            ..FilterConfig::default()
        };
        assert_eq!(filter_bct_books(&table, &cfg).len(), 1);
    }
}
