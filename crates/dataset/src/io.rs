//! Corpus persistence: write a merged corpus to disk and load it back.
//!
//! Generating a paper-scale corpus takes seconds, but downstream users
//! (notebooks, other languages, repeated benchmark runs) want a stable
//! on-disk artefact. The format is three tab-separated files plus a small
//! manifest:
//!
//! ```text
//! <dir>/manifest.tsv    format version, counts, genre labels
//! <dir>/books.tsv       title, authors, plot, keywords, genres, source ids
//! <dir>/users.tsv       source, raw id
//! <dir>/readings.tsv    user, book, day
//! ```
//!
//! Multi-valued fields are `|`-separated; genre profiles are
//! `genre:probability` pairs. Tabs, newlines, and `|` never occur in
//! generated text (asserted at write time), so no quoting layer is needed.

use crate::corpus::{Book, Corpus, Reading, Source, User};
use crate::genre::GenreModel;
use crate::ids::{AnobiiItemId, BctBookId, BookIdx, Day, UserIdx};
use std::fmt::Write as _;
use std::io::{BufRead, BufReader, BufWriter, Write as _};
use std::path::Path;

/// Format version written to the manifest.
const FORMAT_VERSION: u32 = 1;

/// Errors from corpus I/O.
#[derive(Debug)]
pub enum IoError {
    /// Underlying filesystem error.
    Fs(std::io::Error),
    /// A file's contents don't parse.
    Parse {
        /// Which file.
        file: &'static str,
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Manifest declares an unsupported format version.
    UnsupportedVersion(u32),
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Fs(e) => write!(f, "filesystem error: {e}"),
            Self::Parse {
                file,
                line,
                message,
            } => {
                write!(f, "parse error in {file}:{line}: {message}")
            }
            Self::UnsupportedVersion(v) => write!(f, "unsupported corpus format version {v}"),
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        Self::Fs(e)
    }
}

fn check_clean(field: &str) -> &str {
    assert!(
        !field.contains(['\t', '\n', '\r', '|']),
        "field contains a reserved separator: {field:?}"
    );
    field
}

/// Writes a corpus into `dir` (created if missing).
///
/// # Errors
///
/// Returns [`IoError::Fs`] on filesystem failures.
///
/// # Panics
///
/// Panics if any text field contains a tab, newline, or `|` (generated
/// corpora never do).
pub fn save_corpus(corpus: &Corpus, dir: &Path) -> Result<(), IoError> {
    std::fs::create_dir_all(dir)?;

    // Manifest: version, counts, genre labels (the GenreModel's mapping is
    // only needed at preparation time; labels suffice downstream).
    let mut manifest = String::new();
    let _ = writeln!(manifest, "version\t{FORMAT_VERSION}");
    let _ = writeln!(
        manifest,
        "counts\t{}\t{}\t{}",
        corpus.n_books(),
        corpus.n_users(),
        corpus.n_readings()
    );
    let _ = writeln!(
        manifest,
        "genres\t{}",
        corpus
            .genre_model
            .labels()
            .iter()
            .map(|l| check_clean(l))
            .collect::<Vec<_>>()
            .join("|")
    );
    std::fs::write(dir.join("manifest.tsv"), manifest)?;

    let mut books = BufWriter::new(std::fs::File::create(dir.join("books.tsv"))?);
    for b in &corpus.books {
        let genres = b
            .genres
            .iter()
            .map(|(g, p)| format!("{}:{p}", g.0))
            .collect::<Vec<_>>()
            .join("|");
        writeln!(
            books,
            "{}\t{}\t{}\t{}\t{}\t{}\t{}",
            check_clean(&b.title),
            b.authors
                .iter()
                .map(|a| check_clean(a))
                .collect::<Vec<_>>()
                .join("|"),
            check_clean(&b.plot),
            b.keywords
                .iter()
                .map(|k| check_clean(k))
                .collect::<Vec<_>>()
                .join("|"),
            genres,
            b.bct_id.raw(),
            b.anobii_id.raw()
        )?;
    }
    books.flush()?;

    let mut users = BufWriter::new(std::fs::File::create(dir.join("users.tsv"))?);
    for u in &corpus.users {
        let source = match u.source {
            Source::Bct => "bct",
            Source::Anobii => "anobii",
        };
        writeln!(users, "{source}\t{}", u.raw_id)?;
    }
    users.flush()?;

    let mut readings = BufWriter::new(std::fs::File::create(dir.join("readings.tsv"))?);
    for r in &corpus.readings {
        writeln!(readings, "{}\t{}\t{}", r.user.0, r.book.0, r.date.0)?;
    }
    readings.flush()?;
    Ok(())
}

fn parse_err(file: &'static str, line: usize, message: impl Into<String>) -> IoError {
    IoError::Parse {
        file,
        line,
        message: message.into(),
    }
}

/// Loads a corpus previously written by [`save_corpus`].
///
/// The genre model is reconstructed as label-only (the aggregation mapping
/// is not needed after preparation); label indices match the saved
/// aggregated genre ids.
///
/// # Errors
///
/// Returns an [`IoError`] on filesystem or parse failures.
pub fn load_corpus(dir: &Path) -> Result<Corpus, IoError> {
    // Manifest.
    let manifest = std::fs::read_to_string(dir.join("manifest.tsv"))?;
    let mut version = None;
    let mut labels: Vec<String> = Vec::new();
    for (i, line) in manifest.lines().enumerate() {
        let mut parts = line.split('\t');
        match parts.next() {
            Some("version") => {
                let v: u32 = parts
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or_else(|| parse_err("manifest.tsv", i + 1, "bad version"))?;
                if v != FORMAT_VERSION {
                    return Err(IoError::UnsupportedVersion(v));
                }
                version = Some(v);
            }
            Some("genres") => {
                labels = parts
                    .next()
                    .unwrap_or("")
                    .split('|')
                    .filter(|s| !s.is_empty())
                    .map(str::to_owned)
                    .collect();
            }
            _ => {}
        }
    }
    if version.is_none() {
        return Err(parse_err("manifest.tsv", 1, "missing version line"));
    }
    let genre_model = GenreModel::from_labels(labels);

    // Books.
    let mut books = Vec::new();
    let reader = BufReader::new(std::fs::File::open(dir.join("books.tsv"))?);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let parts: Vec<&str> = line.split('\t').collect();
        if parts.len() != 7 {
            return Err(parse_err(
                "books.tsv",
                i + 1,
                format!("expected 7 fields, got {}", parts.len()),
            ));
        }
        let split_multi = |s: &str| -> Vec<String> {
            s.split('|')
                .filter(|p| !p.is_empty())
                .map(str::to_owned)
                .collect()
        };
        let mut genres = Vec::new();
        for pair in parts[4].split('|').filter(|p| !p.is_empty()) {
            let (g, p) = pair
                .split_once(':')
                .ok_or_else(|| parse_err("books.tsv", i + 1, "bad genre pair"))?;
            let g: u8 = g
                .parse()
                .map_err(|_| parse_err("books.tsv", i + 1, "bad genre id"))?;
            let p: f32 = p
                .parse()
                .map_err(|_| parse_err("books.tsv", i + 1, "bad genre prob"))?;
            genres.push((crate::genre::AggGenreId(g), p));
        }
        let bct_id: u32 = parts[5]
            .parse()
            .map_err(|_| parse_err("books.tsv", i + 1, "bad bct id"))?;
        let anobii_id: u32 = parts[6]
            .parse()
            .map_err(|_| parse_err("books.tsv", i + 1, "bad anobii id"))?;
        books.push(Book {
            title: parts[0].to_owned(),
            authors: split_multi(parts[1]),
            plot: parts[2].to_owned(),
            keywords: split_multi(parts[3]),
            genres,
            bct_id: BctBookId(bct_id),
            anobii_id: AnobiiItemId(anobii_id),
        });
    }

    // Users.
    let mut users = Vec::new();
    let reader = BufReader::new(std::fs::File::open(dir.join("users.tsv"))?);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let (source, raw) = line
            .split_once('\t')
            .ok_or_else(|| parse_err("users.tsv", i + 1, "expected 2 fields"))?;
        let source = match source {
            "bct" => Source::Bct,
            "anobii" => Source::Anobii,
            other => {
                return Err(parse_err(
                    "users.tsv",
                    i + 1,
                    format!("unknown source {other}"),
                ))
            }
        };
        let raw_id: u32 = raw
            .parse()
            .map_err(|_| parse_err("users.tsv", i + 1, "bad raw id"))?;
        users.push(User { source, raw_id });
    }

    // Readings.
    let mut readings = Vec::new();
    let reader = BufReader::new(std::fs::File::open(dir.join("readings.tsv"))?);
    for (i, line) in reader.lines().enumerate() {
        let line = line?;
        let parts: Vec<&str> = line.split('\t').collect();
        if parts.len() != 3 {
            return Err(parse_err("readings.tsv", i + 1, "expected 3 fields"));
        }
        let user: u32 = parts[0]
            .parse()
            .map_err(|_| parse_err("readings.tsv", i + 1, "bad user"))?;
        let book: u32 = parts[1]
            .parse()
            .map_err(|_| parse_err("readings.tsv", i + 1, "bad book"))?;
        let day: u32 = parts[2]
            .parse()
            .map_err(|_| parse_err("readings.tsv", i + 1, "bad day"))?;
        if user as usize >= users.len() {
            return Err(parse_err("readings.tsv", i + 1, "user out of range"));
        }
        if book as usize >= books.len() {
            return Err(parse_err("readings.tsv", i + 1, "book out of range"));
        }
        readings.push(Reading {
            user: UserIdx(user),
            book: BookIdx(book),
            date: Day(day),
        });
    }

    Ok(Corpus {
        books,
        users,
        readings,
        genre_model,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genre::AggGenreId;

    fn corpus() -> Corpus {
        Corpus {
            books: vec![Book {
                title: "Il Pendolo".into(),
                authors: vec!["Umberto Eco".into(), "Altro Nome".into()],
                plot: "una trama molto lunga e misteriosa".into(),
                keywords: vec!["mistero".into(), "storia".into()],
                genres: vec![(AggGenreId(0), 0.75), (AggGenreId(2), 0.25)],
                bct_id: BctBookId(17),
                anobii_id: AnobiiItemId(93),
            }],
            users: vec![
                User {
                    source: Source::Bct,
                    raw_id: 4,
                },
                User {
                    source: Source::Anobii,
                    raw_id: 9,
                },
            ],
            readings: vec![
                Reading {
                    user: UserIdx(0),
                    book: BookIdx(0),
                    date: Day(123),
                },
                Reading {
                    user: UserIdx(1),
                    book: BookIdx(0),
                    date: Day(456),
                },
            ],
            genre_model: GenreModel::identity(),
        }
    }

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rm-io-test-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn round_trip_preserves_everything() {
        let dir = tmpdir("roundtrip");
        let c = corpus();
        save_corpus(&c, &dir).unwrap();
        let back = load_corpus(&dir).unwrap();
        assert_eq!(back.books, c.books);
        assert_eq!(back.users, c.users);
        assert_eq!(back.readings, c.readings);
        assert_eq!(back.genre_model.labels(), c.genre_model.labels());
        back.validate();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_dir_is_an_fs_error() {
        let err = load_corpus(Path::new("/nonexistent/rm-io")).unwrap_err();
        assert!(matches!(err, IoError::Fs(_)));
    }

    #[test]
    fn corrupted_readings_reported_with_line() {
        let dir = tmpdir("corrupt");
        save_corpus(&corpus(), &dir).unwrap();
        std::fs::write(dir.join("readings.tsv"), "0\t0\t1\nnot-a-number\t0\t2\n").unwrap();
        let err = load_corpus(&dir).unwrap_err();
        match err {
            IoError::Parse { file, line, .. } => {
                assert_eq!(file, "readings.tsv");
                assert_eq!(line, 2);
            }
            other => panic!("expected parse error, got {other}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn out_of_range_reading_rejected() {
        let dir = tmpdir("range");
        save_corpus(&corpus(), &dir).unwrap();
        std::fs::write(dir.join("readings.tsv"), "0\t99\t1\n").unwrap();
        assert!(matches!(load_corpus(&dir), Err(IoError::Parse { .. })));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn future_version_rejected() {
        let dir = tmpdir("version");
        save_corpus(&corpus(), &dir).unwrap();
        std::fs::write(dir.join("manifest.tsv"), "version\t99\ngenres\tComics\n").unwrap();
        assert!(matches!(
            load_corpus(&dir),
            Err(IoError::UnsupportedVersion(99))
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    #[should_panic(expected = "reserved separator")]
    fn reserved_characters_rejected_at_save() {
        let dir = tmpdir("reserved");
        let mut c = corpus();
        c.books[0].title = "Tab\there".into();
        let _ = save_corpus(&c, &dir);
    }
}
