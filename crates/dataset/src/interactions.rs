//! The user–item interaction matrix `I ∈ {0,1}^(U×B)` (Section 4).
//!
//! [`Interactions`] is a thin, domain-typed wrapper over a pattern
//! [`CsrMatrix`]: row `u` holds the sorted book indices user `u` has read.
//! Recommenders consume this type directly (it is their entire training
//! input besides catalogue metadata).

use crate::corpus::Corpus;
use crate::ids::{BookIdx, UserIdx};
use rm_sparse::CsrMatrix;

/// Binary user×book interaction matrix.
#[derive(Debug, Clone, PartialEq)]
pub struct Interactions {
    matrix: CsrMatrix,
}

impl Interactions {
    /// Builds from explicit (user, book) pairs (duplicates collapse).
    #[must_use]
    pub fn from_pairs(n_users: usize, n_books: usize, pairs: &[(UserIdx, BookIdx)]) -> Self {
        let raw: Vec<(u32, u32)> = pairs.iter().map(|&(u, b)| (u.0, b.0)).collect();
        Self {
            matrix: CsrMatrix::from_pairs(n_users, n_books, &raw),
        }
    }

    /// Builds from a corpus's full readings table.
    #[must_use]
    pub fn from_corpus(corpus: &Corpus) -> Self {
        let raw: Vec<(u32, u32)> = corpus
            .readings
            .iter()
            .map(|r| (r.user.0, r.book.0))
            .collect();
        Self {
            matrix: CsrMatrix::from_pairs(corpus.n_users(), corpus.n_books(), &raw),
        }
    }

    /// Number of users (rows).
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.matrix.rows()
    }

    /// Number of books (columns).
    #[must_use]
    pub fn n_books(&self) -> usize {
        self.matrix.cols()
    }

    /// Number of interactions.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.matrix.nnz()
    }

    /// Sorted book indices read by `user`.
    #[inline]
    #[must_use]
    pub fn seen(&self, user: UserIdx) -> &[u32] {
        self.matrix.row(user.index())
    }

    /// Whether `user` has read `book`.
    #[inline]
    #[must_use]
    pub fn contains(&self, user: UserIdx, book: BookIdx) -> bool {
        self.matrix.contains(user.index(), book.0)
    }

    /// Readings per user.
    #[must_use]
    pub fn user_counts(&self) -> Vec<u64> {
        self.matrix.row_counts()
    }

    /// Readings per book.
    #[must_use]
    pub fn book_counts(&self) -> Vec<u64> {
        self.matrix.col_counts()
    }

    /// Restricts to a subset of users (renumbered densely in the given
    /// order); the book space is unchanged. Used by the *BPR (BCT only)*
    /// baseline, which trains on BCT users alone.
    #[must_use]
    pub fn select_users(&self, users: &[UserIdx]) -> Self {
        let keep: Vec<u32> = users.iter().map(|u| u.0).collect();
        Self {
            matrix: self.matrix.select_rows(&keep),
        }
    }

    /// The underlying CSR matrix.
    #[must_use]
    pub fn as_csr(&self) -> &CsrMatrix {
        &self.matrix
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Interactions {
        Interactions::from_pairs(
            3,
            4,
            &[
                (UserIdx(0), BookIdx(1)),
                (UserIdx(0), BookIdx(3)),
                (UserIdx(2), BookIdx(0)),
                (UserIdx(0), BookIdx(1)), // duplicate
            ],
        )
    }

    #[test]
    fn shape_and_nnz() {
        let i = sample();
        assert_eq!(i.n_users(), 3);
        assert_eq!(i.n_books(), 4);
        assert_eq!(i.nnz(), 3);
    }

    #[test]
    fn seen_and_contains() {
        let i = sample();
        assert_eq!(i.seen(UserIdx(0)), &[1, 3]);
        assert_eq!(i.seen(UserIdx(1)), &[] as &[u32]);
        assert!(i.contains(UserIdx(2), BookIdx(0)));
        assert!(!i.contains(UserIdx(2), BookIdx(1)));
    }

    #[test]
    fn counts() {
        let i = sample();
        assert_eq!(i.user_counts(), vec![2, 0, 1]);
        assert_eq!(i.book_counts(), vec![1, 1, 0, 1]);
    }

    #[test]
    fn select_users_keeps_book_space() {
        let i = sample();
        let s = i.select_users(&[UserIdx(2), UserIdx(0)]);
        assert_eq!(s.n_users(), 2);
        assert_eq!(s.n_books(), 4);
        assert_eq!(s.seen(UserIdx(0)), &[0]); // old user 2
        assert_eq!(s.seen(UserIdx(1)), &[1, 3]); // old user 0
    }
}
