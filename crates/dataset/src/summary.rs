//! Metadata summaries for the content-based recommender (Section 4,
//! "Closest Items").
//!
//! A *metadata summary* is "a string given by the concatenation of the
//! book's metadata"; the paper evaluates "all the possible combinations of
//! (i) the book title, (ii) the author(s), (iii) the book plot, (iv) the
//! genres, and (v) the book keywords" (Fig. 5). [`SummaryFields`] is the
//! corresponding bitset; [`build_summary`] renders one book's summary.

use crate::corpus::{Book, Corpus};

/// Bitset of metadata fields included in a summary.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SummaryFields(u8);

impl SummaryFields {
    /// Book title.
    pub const TITLE: Self = Self(1);
    /// Author(s).
    pub const AUTHORS: Self = Self(2);
    /// Plot synopsis.
    pub const PLOT: Self = Self(4);
    /// Aggregated genres (weighted by repetition according to their
    /// probability — see [`build_summary`]).
    pub const GENRES: Self = Self(8);
    /// Keywords.
    pub const KEYWORDS: Self = Self(16);
    /// All five fields.
    pub const ALL: Self = Self(31);

    /// The paper's best combination: authors + genres (Section 6.2).
    pub const BEST: Self = Self(2 | 8);

    /// Union of two field sets.
    #[must_use]
    pub fn with(self, other: Self) -> Self {
        Self(self.0 | other.0)
    }

    /// True when every field of `other` is included.
    #[must_use]
    pub fn contains(self, other: Self) -> bool {
        self.0 & other.0 == other.0
    }

    /// True when no field is selected.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The raw bit mask — the persisted form used by serving-artifact
    /// manifests.
    #[must_use]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds the set from a persisted bit mask; bits outside
    /// [`SummaryFields::ALL`] are discarded.
    #[must_use]
    pub fn from_bits(bits: u8) -> Self {
        Self(bits & Self::ALL.0)
    }

    /// All 31 non-empty combinations, in ascending bit order. Fig. 5's
    /// sweep iterates a subset of these.
    #[must_use]
    pub fn all_combinations() -> Vec<Self> {
        (1..=Self::ALL.0).map(Self).collect()
    }

    /// Short label, e.g. `"authors+genres"`.
    #[must_use]
    pub fn label(self) -> String {
        let mut parts = Vec::new();
        if self.contains(Self::TITLE) {
            parts.push("title");
        }
        if self.contains(Self::AUTHORS) {
            parts.push("authors");
        }
        if self.contains(Self::PLOT) {
            parts.push("plot");
        }
        if self.contains(Self::GENRES) {
            parts.push("genres");
        }
        if self.contains(Self::KEYWORDS) {
            parts.push("keywords");
        }
        if parts.is_empty() {
            "none".to_owned()
        } else {
            parts.join("+")
        }
    }
}

/// Number of times the top-probability genre label is repeated in a
/// summary; lower-probability genres are repeated proportionally. This
/// carries the vote-proportional genre *probabilities* (Section 3) into the
/// bag-of-words encoder, which only sees token counts.
const GENRE_REPEAT_SCALE: f32 = 4.0;

/// Renders the metadata summary of `book` for the selected `fields`,
/// using `corpus`'s genre model for genre labels.
#[must_use]
pub fn build_summary(corpus: &Corpus, book: &Book, fields: SummaryFields) -> String {
    let mut parts: Vec<String> = Vec::new();
    if fields.contains(SummaryFields::TITLE) {
        parts.push(book.title.clone());
    }
    if fields.contains(SummaryFields::AUTHORS) {
        parts.extend(book.authors.iter().cloned());
    }
    if fields.contains(SummaryFields::PLOT) {
        parts.push(book.plot.clone());
    }
    if fields.contains(SummaryFields::GENRES) {
        for &(g, p) in &book.genres {
            let label = corpus.genre_model.label(g);
            let repeats = ((p * GENRE_REPEAT_SCALE).round() as usize).max(1);
            for _ in 0..repeats {
                parts.push(label.to_owned());
            }
        }
    }
    if fields.contains(SummaryFields::KEYWORDS) {
        parts.extend(book.keywords.iter().cloned());
    }
    parts.join(" ")
}

/// Renders the summaries of the whole catalogue.
#[must_use]
pub fn build_summaries(corpus: &Corpus, fields: SummaryFields) -> Vec<String> {
    corpus
        .books
        .iter()
        .map(|b| build_summary(corpus, b, fields))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Source, User};
    use crate::genre::{AggGenreId, GenreModel};
    use crate::ids::{AnobiiItemId, BctBookId};

    fn corpus_with_book(genres: Vec<(AggGenreId, f32)>) -> Corpus {
        Corpus {
            books: vec![Book {
                title: "La Storia".into(),
                authors: vec!["Elsa Morante".into(), "Altro Autore".into()],
                plot: "una famiglia a roma durante la guerra".into(),
                keywords: vec!["guerra".into(), "roma".into()],
                genres,
                bct_id: BctBookId(0),
                anobii_id: AnobiiItemId(0),
            }],
            users: vec![User {
                source: Source::Bct,
                raw_id: 0,
            }],
            readings: vec![],
            genre_model: GenreModel::identity(),
        }
    }

    #[test]
    fn field_bitset_algebra() {
        let f = SummaryFields::TITLE.with(SummaryFields::GENRES);
        assert!(f.contains(SummaryFields::TITLE));
        assert!(f.contains(SummaryFields::GENRES));
        assert!(!f.contains(SummaryFields::PLOT));
        assert!(!SummaryFields::TITLE.is_empty());
        assert_eq!(
            SummaryFields::ALL.label(),
            "title+authors+plot+genres+keywords"
        );
        assert_eq!(SummaryFields::BEST.label(), "authors+genres");
    }

    #[test]
    fn all_combinations_count() {
        let combos = SummaryFields::all_combinations();
        assert_eq!(combos.len(), 31);
        assert!(combos.iter().all(|c| !c.is_empty()));
    }

    #[test]
    fn title_only_summary() {
        let c = corpus_with_book(vec![]);
        assert_eq!(
            build_summary(&c, &c.books[0], SummaryFields::TITLE),
            "La Storia"
        );
    }

    #[test]
    fn authors_summary_includes_all_authors() {
        let c = corpus_with_book(vec![]);
        let s = build_summary(&c, &c.books[0], SummaryFields::AUTHORS);
        assert!(s.contains("Elsa Morante"));
        assert!(s.contains("Altro Autore"));
    }

    #[test]
    fn genres_repeated_by_probability() {
        let c = corpus_with_book(vec![(AggGenreId(0), 0.75), (AggGenreId(1), 0.25)]);
        let s = build_summary(&c, &c.books[0], SummaryFields::GENRES);
        let comics = s.matches("Comics").count();
        let thriller = s.matches("Thriller").count();
        assert_eq!(comics, 3); // 0.75 * 4
        assert_eq!(thriller, 1); // 0.25 * 4
    }

    #[test]
    fn combined_summary_concatenates() {
        let c = corpus_with_book(vec![(AggGenreId(0), 1.0)]);
        let s = build_summary(&c, &c.books[0], SummaryFields::BEST);
        assert!(s.contains("Elsa Morante"));
        assert!(s.contains("Comics"));
        assert!(!s.contains("La Storia")); // title excluded
        assert!(!s.contains("famiglia")); // plot excluded
    }

    #[test]
    fn build_summaries_covers_catalogue() {
        let c = corpus_with_book(vec![]);
        let all = build_summaries(&c, SummaryFields::KEYWORDS);
        assert_eq!(all.len(), 1);
        assert_eq!(all[0], "guerra roma");
    }

    proptest::proptest! {
        #[test]
        fn bitset_union_is_monotone(a in 0u8..32, b in 0u8..32) {
            let fa = SummaryFields(a);
            let fb = SummaryFields(b);
            let joined = fa.with(fb);
            proptest::prop_assert!(joined.contains(fa));
            proptest::prop_assert!(joined.contains(fb));
            // Union is commutative and idempotent.
            proptest::prop_assert_eq!(joined, fb.with(fa));
            proptest::prop_assert_eq!(joined.with(fa), joined);
        }

        #[test]
        fn summary_grows_with_fields(bits in 1u8..32) {
            let c = corpus_with_book(vec![(AggGenreId(0), 1.0)]);
            let sub = SummaryFields(bits);
            let full = build_summary(&c, &c.books[0], SummaryFields::ALL);
            let part = build_summary(&c, &c.books[0], sub);
            // Every token of a sub-summary appears in the full summary.
            for token in part.split_whitespace() {
                proptest::prop_assert!(full.contains(token), "token {} missing", token);
            }
        }
    }

    #[test]
    fn bits_round_trip() {
        for f in SummaryFields::all_combinations() {
            assert_eq!(SummaryFields::from_bits(f.bits()), f);
        }
        // Unknown high bits are dropped, not preserved.
        assert_eq!(SummaryFields::from_bits(0xFF), SummaryFields::ALL);
        assert!(SummaryFields::from_bits(0b0100_0000).is_empty());
    }

    #[test]
    fn empty_fields_give_empty_summary() {
        let c = corpus_with_book(vec![(AggGenreId(0), 1.0)]);
        let s = build_summary(&c, &c.books[0], SummaryFields(0));
        assert!(s.is_empty());
    }
}
