//! Merging the BCT and Anobii datasets (Section 3, "Merging BCT and Anobii
//! datasets").
//!
//! The merged catalogue is the *intersection* of the two filtered
//! catalogues — "for each book present in both the BCT and Anobii datasets,
//! we keep all the attributes from both" — joined on a normalised
//! (title, first author) key. The Readings table is the union of the BCT
//! loans and the positive Anobii ratings restricted to the merged
//! catalogue, after which low-activity users (< 10 readings) and unpopular
//! books (< 100 readings) are pruned.

use crate::corpus::{Book, Corpus, Reading, Source, User};
use crate::filter::{filter_anobii_items, filter_bct_books, filter_ratings, FilterConfig};
use crate::genre::{GenreConfig, GenreModel, N_RAW_GENRES};
use crate::ids::{BookIdx, Day, UserIdx};
use crate::tables::{AnobiiItemsTable, BctBooksTable, LoansTable, RatingsTable};
use rm_embed::tokenize::tokens;
use std::collections::{BTreeMap, HashMap};

/// How the activity thresholds are applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PruneMode {
    /// One pass: drop unpopular books, then recount and drop low-activity
    /// users. This is the literal reading of the paper ("we drop users who
    /// read less than 10 books and books which are read less than 100
    /// times") and the default.
    #[default]
    SinglePass,
    /// Iterate book- and user-pruning to a fixpoint. Stricter; cascades can
    /// remove substantially more of the corpus.
    Fixpoint,
}

/// Configuration of the merge + pruning stage. Defaults are the paper's
/// thresholds.
#[derive(Debug, Clone, Default)]
pub struct MergeConfig {
    /// Source filtering thresholds.
    pub filter: FilterConfig,
    /// Genre pipeline thresholds.
    pub genre: GenreConfig,
    /// Prune application mode.
    pub prune: PruneMode,
    /// Users with fewer distinct readings than this are dropped.
    pub min_user_readings: MinUserReadings,
    /// Books with fewer distinct readings than this are dropped.
    pub min_book_readings: MinBookReadings,
}

/// Newtype default-carrier for the user threshold (paper: 10).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinUserReadings(pub u32);

impl Default for MinUserReadings {
    fn default() -> Self {
        Self(10)
    }
}

/// Newtype default-carrier for the book threshold (paper: 100).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MinBookReadings(pub u32);

impl Default for MinBookReadings {
    fn default() -> Self {
        Self(100)
    }
}

/// Normalised join key for catalogue matching: folded tokens of the title
/// followed by folded tokens of the first author.
#[must_use]
pub fn join_key(title: &str, authors: &[String]) -> String {
    let mut parts = tokens(title);
    if let Some(first_author) = authors.first() {
        parts.extend(tokens(first_author));
    }
    parts.join(" ")
}

/// Runs the full merge pipeline and returns the pruned corpus.
///
/// Steps: filter both sources → fit the genre model on the filtered Anobii
/// catalogue → join catalogues on [`join_key`] → union loans and positive
/// ratings into a deduplicated readings table → apply activity pruning →
/// renumber densely.
#[must_use]
pub fn build_corpus(
    bct_books: &BctBooksTable,
    loans: &LoansTable,
    anobii_items: &AnobiiItemsTable,
    ratings: &RatingsTable,
    config: &MergeConfig,
) -> Corpus {
    // --- 1. Source filters. ---
    let kept_bct = filter_bct_books(bct_books, &config.filter);
    let kept_anobii = filter_anobii_items(anobii_items, &config.filter);
    let kept_ratings = filter_ratings(ratings, &config.filter);

    // --- 2. Genre model over the filtered Anobii catalogue. ---
    let mut book_counts = vec![0u64; N_RAW_GENRES];
    let mut vote_counts = vec![0u64; N_RAW_GENRES];
    for item in &kept_anobii {
        for &(g, v) in &item.genre_votes {
            if v > 0 {
                book_counts[g.0 as usize] += 1;
                vote_counts[g.0 as usize] += u64::from(v);
            }
        }
    }
    let genre_model = GenreModel::fit(&book_counts, &vote_counts, kept_anobii.len(), &config.genre);

    // --- 3. Catalogue join (intersection). ---
    let mut anobii_by_key: HashMap<String, &crate::tables::AnobiiItemRow> = HashMap::new();
    for item in &kept_anobii {
        // First occurrence wins; later duplicates (reprints with identical
        // normalised title+author) are ignored.
        anobii_by_key
            .entry(join_key(&item.title, &item.authors))
            .or_insert(item);
    }

    let mut books: Vec<Book> = Vec::new();
    let mut bct_to_book: HashMap<u32, BookIdx> = HashMap::new();
    let mut anobii_to_book: HashMap<u32, BookIdx> = HashMap::new();
    for row in &kept_bct {
        let key = join_key(&row.title, &row.authors);
        let Some(item) = anobii_by_key.remove(&key) else {
            continue;
        };
        let idx = BookIdx(books.len() as u32);
        books.push(Book {
            title: row.title.clone(),
            authors: row.authors.clone(),
            plot: item.plot.clone(),
            keywords: item.keywords.clone(),
            genres: genre_model.process_votes(&item.genre_votes),
            bct_id: row.book_id,
            anobii_id: item.item_id,
        });
        bct_to_book.insert(row.book_id.raw(), idx);
        anobii_to_book.insert(item.item_id.raw(), idx);
    }

    // --- 4. Readings union, deduplicated to the earliest date. ---
    let mut users: Vec<User> = Vec::new();
    let mut user_index: HashMap<(Source, u32), UserIdx> = HashMap::new();
    // BTreeMap: the pruning loop and the final drain below iterate this
    // map, and the iteration order must not depend on the hasher. Keys are
    // (user, book) index pairs, so the drain is already in the final sort
    // order (the sort_unstable_by_key stays as the explicit contract).
    let mut readings: BTreeMap<(u32, u32), Day> = BTreeMap::new();

    let intern_user = |users: &mut Vec<User>,
                       user_index: &mut HashMap<(Source, u32), UserIdx>,
                       source: Source,
                       raw: u32| {
        *user_index.entry((source, raw)).or_insert_with(|| {
            let idx = UserIdx(users.len() as u32);
            users.push(User {
                source,
                raw_id: raw,
            });
            idx
        })
    };

    for loan in &loans.rows {
        let Some(&book) = bct_to_book.get(&loan.book_id.raw()) else {
            continue;
        };
        let user = intern_user(&mut users, &mut user_index, Source::Bct, loan.user_id.raw());
        readings
            .entry((user.0, book.0))
            .and_modify(|d| *d = (*d).min(loan.date))
            .or_insert(loan.date);
    }
    for rating in &kept_ratings {
        let Some(&book) = anobii_to_book.get(&rating.item_id.raw()) else {
            continue;
        };
        let user = intern_user(
            &mut users,
            &mut user_index,
            Source::Anobii,
            rating.user_id.raw(),
        );
        readings
            .entry((user.0, book.0))
            .and_modify(|d| *d = (*d).min(rating.date))
            .or_insert(rating.date);
    }

    // --- 5. Activity pruning. ---
    let mut keep_book = vec![true; books.len()];
    let mut keep_user = vec![true; users.len()];
    loop {
        // Books below the threshold (counting readings of kept users).
        let mut book_reads = vec![0u32; books.len()];
        for &(u, b) in readings.keys() {
            if keep_user[u as usize] && keep_book[b as usize] {
                book_reads[b as usize] += 1;
            }
        }
        let mut changed = false;
        for (b, &reads) in book_reads.iter().enumerate() {
            if keep_book[b] && reads < config.min_book_readings.0 {
                keep_book[b] = false;
                changed = true;
            }
        }
        // Users below the threshold (counting readings of kept books).
        let mut user_reads = vec![0u32; users.len()];
        for &(u, b) in readings.keys() {
            if keep_user[u as usize] && keep_book[b as usize] {
                user_reads[u as usize] += 1;
            }
        }
        for (u, &reads) in user_reads.iter().enumerate() {
            if keep_user[u] && reads < config.min_user_readings.0 {
                keep_user[u] = false;
                changed = true;
            }
        }
        if config.prune == PruneMode::SinglePass || !changed {
            break;
        }
    }

    // --- 6. Dense renumbering, sorted readings. ---
    let mut book_renum = vec![u32::MAX; books.len()];
    let mut final_books = Vec::new();
    for (b, book) in books.into_iter().enumerate() {
        if keep_book[b] {
            book_renum[b] = final_books.len() as u32;
            final_books.push(book);
        }
    }
    let mut user_renum = vec![u32::MAX; users.len()];
    let mut final_users = Vec::new();
    for (u, user) in users.into_iter().enumerate() {
        if keep_user[u] {
            user_renum[u] = final_users.len() as u32;
            final_users.push(user);
        }
    }

    let mut final_readings: Vec<Reading> = readings
        .into_iter()
        .filter(|&((u, b), _)| keep_user[u as usize] && keep_book[b as usize])
        .map(|((u, b), date)| Reading {
            user: UserIdx(user_renum[u as usize]),
            book: BookIdx(book_renum[b as usize]),
            date,
        })
        .collect();
    final_readings.sort_unstable_by_key(|r| (r.user.0, r.book.0));

    // Drop users that lost *all* readings to book pruning (possible in
    // single-pass mode when every book they read was unpopular — they would
    // otherwise be empty rows).
    let corpus = compact_empty_users(final_books, final_users, final_readings, genre_model);
    debug_assert!({
        corpus.validate();
        true
    });
    corpus
}

/// Removes users with zero readings and renumbers.
fn compact_empty_users(
    books: Vec<Book>,
    users: Vec<User>,
    readings: Vec<Reading>,
    genre_model: GenreModel,
) -> Corpus {
    let mut has_reading = vec![false; users.len()];
    for r in &readings {
        has_reading[r.user.index()] = true;
    }
    if has_reading.iter().all(|&h| h) {
        return Corpus {
            books,
            users,
            readings,
            genre_model,
        };
    }
    let mut renum = vec![u32::MAX; users.len()];
    let mut final_users = Vec::with_capacity(users.len());
    for (u, user) in users.into_iter().enumerate() {
        if has_reading[u] {
            renum[u] = final_users.len() as u32;
            final_users.push(user);
        }
    }
    let readings = readings
        .into_iter()
        .map(|r| Reading {
            user: UserIdx(renum[r.user.index()]),
            ..r
        })
        .collect();
    Corpus {
        books,
        users: final_users,
        readings,
        genre_model,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::genre::{genre_id, GenreId};
    use crate::ids::{AnobiiItemId, AnobiiUserId, BctBookId, BctUserId};
    use crate::tables::{AnobiiItemRow, BctBookRow, ItemType, Language, LoanRow, RatingRow};

    fn bct_book(id: u32, title: &str, author: &str) -> BctBookRow {
        BctBookRow {
            book_id: BctBookId(id),
            authors: vec![author.to_owned()],
            title: title.to_owned(),
            item_type: ItemType::Monograph,
            language: Language::Italian,
        }
    }

    fn anobii_item(id: u32, title: &str, author: &str) -> AnobiiItemRow {
        AnobiiItemRow {
            item_id: AnobiiItemId(id),
            authors: vec![author.to_owned()],
            title: title.to_owned(),
            language: Language::Italian,
            plot: format!("trama di {title}"),
            keywords: vec!["parola".to_owned()],
            genre_votes: vec![(genre_id("Comics").unwrap(), 5), (GenreId(1), 2)],
            is_book: true,
        }
    }

    /// A tiny but complete fixture: 3 overlapping books, 1 BCT-only book,
    /// 1 Anobii-only item; thresholds lowered so the fixture survives.
    fn fixture() -> (
        BctBooksTable,
        LoansTable,
        AnobiiItemsTable,
        RatingsTable,
        MergeConfig,
    ) {
        let bct_books = BctBooksTable {
            rows: vec![
                bct_book(100, "Il Nome della Rosa", "Umberto Eco"),
                bct_book(101, "Orlando Furioso", "Ludovico Ariosto"),
                bct_book(102, "Libro Solo BCT", "Autore Uno"),
                bct_book(103, "Il Pendolo", "Umberto Eco"),
            ],
        };
        let anobii_items = AnobiiItemsTable {
            rows: vec![
                anobii_item(200, "Il nome della ROSA", "Umberto ECO"), // matches 100
                anobii_item(201, "Orlando furioso", "Ludovico Ariosto"), // matches 101
                anobii_item(202, "Solo Anobii", "Autore Due"),
                anobii_item(203, "Il Pendolo", "Umberto Eco"), // matches 103
            ],
        };
        // Users: BCT user 1 reads all three merged books; BCT user 2 reads
        // two; Anobii users 11, 12 rate merged books (one rating below 3 is
        // dropped).
        let loans = LoansTable {
            rows: vec![
                LoanRow {
                    user_id: BctUserId(1),
                    book_id: BctBookId(100),
                    date: Day(10),
                },
                LoanRow {
                    user_id: BctUserId(1),
                    book_id: BctBookId(101),
                    date: Day(11),
                },
                LoanRow {
                    user_id: BctUserId(1),
                    book_id: BctBookId(103),
                    date: Day(12),
                },
                LoanRow {
                    user_id: BctUserId(1),
                    book_id: BctBookId(100),
                    date: Day(2),
                }, // re-loan, earlier
                LoanRow {
                    user_id: BctUserId(2),
                    book_id: BctBookId(100),
                    date: Day(20),
                },
                LoanRow {
                    user_id: BctUserId(2),
                    book_id: BctBookId(101),
                    date: Day(21),
                },
                LoanRow {
                    user_id: BctUserId(2),
                    book_id: BctBookId(102),
                    date: Day(22),
                }, // unmatched book
            ],
        };
        let ratings = RatingsTable {
            rows: vec![
                RatingRow {
                    user_id: AnobiiUserId(11),
                    item_id: AnobiiItemId(200),
                    rating: 5,
                    date: Day(30),
                },
                RatingRow {
                    user_id: AnobiiUserId(11),
                    item_id: AnobiiItemId(201),
                    rating: 4,
                    date: Day(31),
                },
                RatingRow {
                    user_id: AnobiiUserId(11),
                    item_id: AnobiiItemId(203),
                    rating: 2,
                    date: Day(32),
                }, // negative, dropped
                RatingRow {
                    user_id: AnobiiUserId(12),
                    item_id: AnobiiItemId(200),
                    rating: 3,
                    date: Day(40),
                },
                RatingRow {
                    user_id: AnobiiUserId(12),
                    item_id: AnobiiItemId(203),
                    rating: 5,
                    date: Day(41),
                },
                RatingRow {
                    user_id: AnobiiUserId(12),
                    item_id: AnobiiItemId(202),
                    rating: 5,
                    date: Day(42),
                }, // unmatched item
            ],
        };
        let config = MergeConfig {
            min_user_readings: MinUserReadings(2),
            min_book_readings: MinBookReadings(2),
            // The fixture's two genres cover every book; disable the
            // share-based pruning so they survive.
            genre: GenreConfig {
                max_book_share: 1.0,
                min_book_share: 0.0,
                ..GenreConfig::default()
            },
            ..MergeConfig::default()
        };
        (bct_books, loans, anobii_items, ratings, config)
    }

    #[test]
    fn join_key_normalises() {
        assert_eq!(
            join_key("Il Nome della ROSA", &["Umberto Eco".to_owned()]),
            join_key("il nome della rosa!", &["UMBERTO ECO".to_owned()])
        );
        assert_ne!(
            join_key("Il Nome della Rosa", &["Umberto Eco".to_owned()]),
            join_key("Il Nome della Rosa", &["Altro Autore".to_owned()])
        );
    }

    #[test]
    fn catalogue_is_the_intersection() {
        let (b, l, a, r, cfg) = fixture();
        let c = build_corpus(&b, &l, &a, &r, &cfg);
        // 3 matched books; "Il Pendolo" has 2 readings (user1 loan + user12
        // rating), survives min_book_readings=2.
        assert_eq!(c.n_books(), 3);
        let titles: Vec<&str> = c.books.iter().map(|bk| bk.title.as_str()).collect();
        assert!(titles.contains(&"Il Nome della Rosa"));
        assert!(!titles.contains(&"Libro Solo BCT"));
        // Attributes come from both sides.
        assert!(c.books.iter().all(|bk| !bk.plot.is_empty()));
        assert!(c.books.iter().all(|bk| !bk.genres.is_empty()));
    }

    #[test]
    fn readings_union_dedup_and_rating_filter() {
        let (b, l, a, r, cfg) = fixture();
        let c = build_corpus(&b, &l, &a, &r, &cfg);
        c.validate();
        // user1: 3 readings (re-loan deduplicated); user2: 2 (unmatched book
        // dropped); user11: 2 (negative rating dropped); user12: 2
        // (unmatched item dropped).
        assert_eq!(c.n_users(), 4);
        assert_eq!(c.n_readings(), 9);
        // Dedup kept the earliest date for user1 × "Il Nome della Rosa".
        let user1 = c
            .users
            .iter()
            .position(|u| u.source == Source::Bct && u.raw_id == 1)
            .unwrap();
        let rosa = c
            .books
            .iter()
            .position(|bk| bk.title == "Il Nome della Rosa")
            .unwrap() as u32;
        let reading = c
            .readings
            .iter()
            .find(|rd| rd.user.0 == user1 as u32 && rd.book.0 == rosa)
            .unwrap();
        assert_eq!(reading.date, Day(2));
    }

    #[test]
    fn pruning_drops_low_activity() {
        let (b, l, a, r, mut cfg) = fixture();
        cfg.min_user_readings = MinUserReadings(3);
        let c = build_corpus(&b, &l, &a, &r, &cfg);
        // Only user1 has >= 3 readings.
        assert_eq!(c.n_users(), 1);
        assert_eq!(c.users[0].source, Source::Bct);
        assert_eq!(c.users[0].raw_id, 1);
        c.validate();
    }

    #[test]
    fn book_pruning_cascades_in_fixpoint_mode() {
        let (b, l, a, r, mut cfg) = fixture();
        cfg.min_book_readings = MinBookReadings(3);
        cfg.min_user_readings = MinUserReadings(2);
        cfg.prune = PruneMode::Fixpoint;
        let c = build_corpus(&b, &l, &a, &r, &cfg);
        c.validate();
        // Books with 3+ readings: Rosa (4), Orlando (3). Pendolo (2) dies.
        assert_eq!(c.n_books(), 2);
        // User12 then has 1 reading and dies; user1 keeps 2, user2 keeps 2,
        // user11 keeps 2.
        assert_eq!(c.n_users(), 3);
    }

    #[test]
    fn empty_sources_give_empty_corpus() {
        let cfg = MergeConfig::default();
        let c = build_corpus(
            &BctBooksTable::default(),
            &LoansTable::default(),
            &AnobiiItemsTable::default(),
            &RatingsTable::default(),
            &cfg,
        );
        assert_eq!(c.n_books(), 0);
        assert_eq!(c.n_users(), 0);
        assert_eq!(c.n_readings(), 0);
    }

    #[test]
    fn users_without_surviving_readings_are_compacted() {
        let (b, l, a, r, mut cfg) = fixture();
        // Kill Pendolo (2 readings < 3) in single-pass mode: user12 keeps
        // only 1 reading but the user threshold of 1 would keep them; with
        // threshold 2 user12 must disappear entirely, not remain empty.
        cfg.min_book_readings = MinBookReadings(3);
        cfg.min_user_readings = MinUserReadings(2);
        let c = build_corpus(&b, &l, &a, &r, &cfg);
        c.validate();
        assert!(c.readings_per_user().iter().all(|&n| n > 0));
    }
}
