//! The merged corpus: the final books / users / readings the recommenders
//! consume (output of the Section 3 preparation).

use crate::genre::{AggGenreId, GenreModel};
use crate::ids::{AnobiiItemId, AnobiiUserId, BctBookId, BctUserId, BookIdx, Day, UserIdx};

/// Which source a user comes from. BCT users are the recommendation target
/// (they get a test split); Anobii users only contribute training signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Source {
    /// Turin public-library subscriber.
    Bct,
    /// Anobii community member.
    Anobii,
}

/// A book of the merged catalogue — present in *both* sources, carrying the
/// union of their attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Book {
    /// Title (BCT spelling).
    pub title: String,
    /// Author(s).
    pub authors: Vec<String>,
    /// Plot synopsis (from Anobii).
    pub plot: String,
    /// Crowd-sourced keywords (from Anobii).
    pub keywords: Vec<String>,
    /// Post-processed genres: top-4 aggregated genres with
    /// vote-proportional probabilities summing to 1 (empty when no votes
    /// survived the genre pipeline).
    pub genres: Vec<(AggGenreId, f32)>,
    /// The book's id in the BCT Books table.
    pub bct_id: BctBookId,
    /// The item's id in the Anobii Items table.
    pub anobii_id: AnobiiItemId,
}

/// A user of the merged corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct User {
    /// Originating source.
    pub source: Source,
    /// Raw id within the source's user space.
    pub raw_id: u32,
}

impl User {
    /// The BCT user id, when this is a BCT user.
    #[must_use]
    pub fn bct_id(&self) -> Option<BctUserId> {
        matches!(self.source, Source::Bct).then(|| BctUserId(self.raw_id))
    }

    /// The Anobii user id, when this is an Anobii user.
    #[must_use]
    pub fn anobii_id(&self) -> Option<AnobiiUserId> {
        matches!(self.source, Source::Anobii).then(|| AnobiiUserId(self.raw_id))
    }
}

/// One reading event of the merged Readings table (a BCT loan or a positive
/// Anobii rating). `(user, book)` pairs are unique — re-loans collapse to
/// the earliest date, since repetition adds no implicit-feedback signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Reading {
    /// Reading user (dense corpus index).
    pub user: UserIdx,
    /// Read book (dense corpus index).
    pub book: BookIdx,
    /// Date of the loan / rating.
    pub date: Day,
}

/// The merged, pruned corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    /// Catalogue, indexed by [`BookIdx`].
    pub books: Vec<Book>,
    /// Users, indexed by [`UserIdx`].
    pub users: Vec<User>,
    /// Readings table, sorted by (user, book).
    pub readings: Vec<Reading>,
    /// The fitted genre model (needed to label aggregated genres).
    pub genre_model: GenreModel,
}

impl Corpus {
    /// Catalogue size.
    #[must_use]
    pub fn n_books(&self) -> usize {
        self.books.len()
    }

    /// Number of users.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Number of readings.
    #[must_use]
    pub fn n_readings(&self) -> usize {
        self.readings.len()
    }

    /// Indices of BCT users (the evaluation targets).
    #[must_use]
    pub fn bct_users(&self) -> Vec<UserIdx> {
        self.users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.source == Source::Bct)
            .map(|(i, _)| UserIdx(i as u32))
            .collect()
    }

    /// Indices of Anobii users.
    #[must_use]
    pub fn anobii_users(&self) -> Vec<UserIdx> {
        self.users
            .iter()
            .enumerate()
            .filter(|(_, u)| u.source == Source::Anobii)
            .map(|(i, _)| UserIdx(i as u32))
            .collect()
    }

    /// Readings of each user, as ranges into `readings` (valid because the
    /// table is sorted by user).
    #[must_use]
    pub fn readings_by_user(&self) -> Vec<&[Reading]> {
        let mut out = Vec::with_capacity(self.n_users());
        let mut start = 0usize;
        for u in 0..self.n_users() as u32 {
            let mut end = start;
            while end < self.readings.len() && self.readings[end].user.0 == u {
                end += 1;
            }
            out.push(&self.readings[start..end]);
            start = end;
        }
        debug_assert_eq!(start, self.readings.len(), "readings not sorted by user");
        out
    }

    /// Number of distinct readings per user.
    #[must_use]
    pub fn readings_per_user(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.n_users()];
        for r in &self.readings {
            counts[r.user.index()] += 1;
        }
        counts
    }

    /// Number of distinct readings per book.
    #[must_use]
    pub fn readings_per_book(&self) -> Vec<u64> {
        let mut counts = vec![0u64; self.n_books()];
        for r in &self.readings {
            counts[r.book.index()] += 1;
        }
        counts
    }

    /// Checks internal invariants; used by tests and debug assertions.
    ///
    /// # Panics
    ///
    /// Panics when an invariant is violated.
    pub fn validate(&self) {
        let n_users = self.n_users() as u32;
        let n_books = self.n_books() as u32;
        let mut prev: Option<(u32, u32)> = None;
        for r in &self.readings {
            assert!(r.user.0 < n_users, "reading references unknown user");
            assert!(r.book.0 < n_books, "reading references unknown book");
            let key = (r.user.0, r.book.0);
            if let Some(p) = prev {
                assert!(p < key, "readings must be strictly sorted by (user, book)");
            }
            prev = Some(key);
        }
        for b in &self.books {
            let total: f32 = b.genres.iter().map(|&(_, p)| p).sum();
            assert!(
                b.genres.is_empty() || (total - 1.0).abs() < 1e-4,
                "genre probabilities must sum to 1, got {total}"
            );
            for &(g, _) in &b.genres {
                assert!((g.0 as usize) < self.genre_model.n_genres());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_corpus() -> Corpus {
        Corpus {
            books: vec![Book {
                title: "T".into(),
                authors: vec!["A".into()],
                plot: String::new(),
                keywords: vec![],
                genres: vec![(AggGenreId(0), 1.0)],
                bct_id: BctBookId(10),
                anobii_id: AnobiiItemId(20),
            }],
            users: vec![
                User {
                    source: Source::Bct,
                    raw_id: 1,
                },
                User {
                    source: Source::Anobii,
                    raw_id: 2,
                },
            ],
            readings: vec![
                Reading {
                    user: UserIdx(0),
                    book: BookIdx(0),
                    date: Day(5),
                },
                Reading {
                    user: UserIdx(1),
                    book: BookIdx(0),
                    date: Day(9),
                },
            ],
            genre_model: GenreModel::identity(),
        }
    }

    #[test]
    fn source_partitions() {
        let c = tiny_corpus();
        assert_eq!(c.bct_users(), vec![UserIdx(0)]);
        assert_eq!(c.anobii_users(), vec![UserIdx(1)]);
    }

    #[test]
    fn user_id_accessors() {
        let u = User {
            source: Source::Bct,
            raw_id: 7,
        };
        assert_eq!(u.bct_id(), Some(BctUserId(7)));
        assert_eq!(u.anobii_id(), None);
    }

    #[test]
    fn per_user_and_per_book_counts() {
        let c = tiny_corpus();
        assert_eq!(c.readings_per_user(), vec![1, 1]);
        assert_eq!(c.readings_per_book(), vec![2]);
    }

    #[test]
    fn readings_by_user_ranges() {
        let c = tiny_corpus();
        let by_user = c.readings_by_user();
        assert_eq!(by_user.len(), 2);
        assert_eq!(by_user[0].len(), 1);
        assert_eq!(by_user[0][0].date, Day(5));
        assert_eq!(by_user[1][0].date, Day(9));
    }

    #[test]
    fn validate_accepts_consistent_corpus() {
        tiny_corpus().validate();
    }

    #[test]
    #[should_panic(expected = "sorted")]
    fn validate_rejects_unsorted_readings() {
        let mut c = tiny_corpus();
        c.readings.reverse();
        c.validate();
    }

    #[test]
    #[should_panic(expected = "sum to 1")]
    fn validate_rejects_bad_genre_probs() {
        let mut c = tiny_corpus();
        c.books[0].genres = vec![(AggGenreId(0), 0.4)];
        c.validate();
    }
}
