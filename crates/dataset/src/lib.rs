//! The data platform of the reading-machine pipeline (Section 3 of the
//! paper).
//!
//! The paper works with two heterogeneous sources — the BCT loan archive of
//! the Turin public libraries and the Anobii social catalogue — and derives
//! from them a single merged corpus of books, users, and readings. This
//! crate implements every step of that derivation on typed in-memory
//! tables:
//!
//! 1. raw table schemas ([`tables`]) with newtype identifiers ([`ids`]);
//! 2. source filtering ([`filter`]): Italian monographs/manuscripts only,
//!    Anobii ratings below 3 dropped as negative feedback;
//! 3. genre post-processing ([`genre`]): the 41 crowd-sourced genres are
//!    pruned of ubiquitous/rare labels, aggregated under an entropy-balance
//!    criterion, and reduced to each book's top-4 genres with
//!    vote-proportional probabilities;
//! 4. the BCT ⋈ Anobii catalogue join and reading-table union ([`merge`]),
//!    followed by activity pruning (users < 10 readings, books < 100
//!    readings) into the final [`corpus::Corpus`];
//! 5. metadata summaries for the content-based recommender ([`summary`]);
//! 6. interaction matrices ([`interactions`]) and corpus statistics
//!    ([`stats`]) feeding Figs. 1–2;
//! 7. corpus persistence ([`io`]): save/load the merged corpus as
//!    tab-separated files for reuse outside this process.

pub mod corpus;
pub mod filter;
pub mod genre;
pub mod ids;
pub mod interactions;
pub mod io;
pub mod merge;
pub mod stats;
pub mod summary;
pub mod tables;

pub use corpus::{Book, Corpus, Source, User};
pub use summary::SummaryFields;
