//! Raw table schemas for the two sources (Section 3 of the paper).
//!
//! These mirror the tables the paper describes: the BCT *Books* and *Loans*
//! tables, and the Anobii *Items* and *Ratings* tables. They are plain
//! vectors of row structs — the pipeline reads them once, sequentially, so
//! columnar layouts would buy nothing.

use crate::genre::GenreId;
use crate::ids::{AnobiiItemId, AnobiiUserId, BctBookId, BctUserId, Day};

/// Physical type of a BCT catalogue item.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ItemType {
    /// A monograph — kept by the paper's filter.
    Monograph,
    /// A manuscript — kept by the paper's filter.
    Manuscript,
    /// A DVD — dropped.
    Dvd,
    /// A periodical — dropped.
    Periodical,
    /// Sheet music — dropped.
    MusicScore,
    /// Anything else — dropped.
    Other,
}

impl ItemType {
    /// Whether the paper's preparation keeps this type.
    #[must_use]
    pub fn is_kept(self) -> bool {
        matches!(self, Self::Monograph | Self::Manuscript)
    }
}

/// Language of an edition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Language {
    /// Italian — the only language the paper keeps.
    Italian,
    /// English.
    English,
    /// French.
    French,
    /// German.
    German,
    /// Spanish.
    Spanish,
    /// Any other language.
    Other,
}

/// One row of the BCT Books table.
#[derive(Debug, Clone, PartialEq)]
pub struct BctBookRow {
    /// Unique book identifier.
    pub book_id: BctBookId,
    /// Author(s), one string per author.
    pub authors: Vec<String>,
    /// Title of the edition.
    pub title: String,
    /// Type of the item (monograph, manuscript, DVD, ...).
    pub item_type: ItemType,
    /// Language of the edition.
    pub language: Language,
}

/// The BCT Books table.
#[derive(Debug, Clone, Default)]
pub struct BctBooksTable {
    /// All rows.
    pub rows: Vec<BctBookRow>,
}

/// One row of the BCT Loans table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoanRow {
    /// Anonymised borrowing user.
    pub user_id: BctUserId,
    /// Borrowed book.
    pub book_id: BctBookId,
    /// Date of the loan.
    pub date: Day,
}

/// The BCT Loans table (2012–2020 in the paper).
#[derive(Debug, Clone, Default)]
pub struct LoansTable {
    /// All rows.
    pub rows: Vec<LoanRow>,
}

/// One row of the Anobii Items table.
#[derive(Debug, Clone, PartialEq)]
pub struct AnobiiItemRow {
    /// Unique item identifier.
    pub item_id: AnobiiItemId,
    /// Author(s).
    pub authors: Vec<String>,
    /// Title.
    pub title: String,
    /// Language of the edition.
    pub language: Language,
    /// Crowd-sourced plot synopsis.
    pub plot: String,
    /// Crowd-sourced keywords.
    pub keywords: Vec<String>,
    /// Genre votes: `(genre, number of users who attached it)`.
    pub genre_votes: Vec<(GenreId, u32)>,
    /// Whether the item is a book at all (the Anobii catalogue also lists
    /// non-book items, which the pipeline drops).
    pub is_book: bool,
}

/// The Anobii Items table.
#[derive(Debug, Clone, Default)]
pub struct AnobiiItemsTable {
    /// All rows.
    pub rows: Vec<AnobiiItemRow>,
}

/// One row of the Anobii Ratings table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RatingRow {
    /// Anonymised rating user.
    pub user_id: AnobiiUserId,
    /// Rated item.
    pub item_id: AnobiiItemId,
    /// Star rating, 1–5 (increasing appreciation).
    pub rating: u8,
    /// Date the rating was entered.
    pub date: Day,
}

/// The Anobii Ratings table (2014–2021 in the paper).
#[derive(Debug, Clone, Default)]
pub struct RatingsTable {
    /// All rows.
    pub rows: Vec<RatingRow>,
}

impl BctBooksTable {
    /// Number of distinct books.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl LoansTable {
    /// Number of loans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl AnobiiItemsTable {
    /// Number of items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

impl RatingsTable {
    /// Number of ratings.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_type_filter_matches_paper() {
        assert!(ItemType::Monograph.is_kept());
        assert!(ItemType::Manuscript.is_kept());
        assert!(!ItemType::Dvd.is_kept());
        assert!(!ItemType::Periodical.is_kept());
        assert!(!ItemType::Other.is_kept());
    }

    #[test]
    fn tables_default_empty() {
        assert!(BctBooksTable::default().is_empty());
        assert!(LoansTable::default().is_empty());
        assert!(AnobiiItemsTable::default().is_empty());
        assert!(RatingsTable::default().is_empty());
    }

    #[test]
    fn loan_row_is_small() {
        // 12 bytes of payload; allow padding to 12 exactly (u32 × 3).
        assert_eq!(std::mem::size_of::<LoanRow>(), 12);
    }
}
