//! Newtype identifiers.
//!
//! Raw table identifiers (`BctBookId`, `AnobiiItemId`, per-source user ids)
//! are opaque labels assigned by the source systems; the merged corpus
//! re-numbers everything densely (`BookIdx`, `UserIdx`) so matrices can be
//! indexed directly. Keeping the two families as distinct types makes it a
//! compile error to index a matrix with a raw id.

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The raw integer value.
            #[inline]
            #[must_use]
            pub fn raw(self) -> u32 {
                self.0
            }

            /// The value as a `usize` index.
            #[inline]
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl From<u32> for $name {
            fn from(v: u32) -> Self {
                Self(v)
            }
        }

        impl std::fmt::Display for $name {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                write!(f, concat!(stringify!($name), "({})"), self.0)
            }
        }
    };
}

id_type!(
    /// Identifier of a book in the BCT Books table.
    BctBookId
);
id_type!(
    /// Identifier of a subscribed user in the BCT Loans table.
    BctUserId
);
id_type!(
    /// Identifier of an item in the Anobii Items table.
    AnobiiItemId
);
id_type!(
    /// Identifier of a user in the Anobii Ratings table.
    AnobiiUserId
);
id_type!(
    /// Dense index of a book in the merged corpus (row of the catalogue).
    BookIdx
);
id_type!(
    /// Dense index of a user in the merged corpus.
    UserIdx
);

/// A day number relative to 2012-01-01 (the start of the BCT observation
/// window). The pipeline only needs ordering and coarse ranges, so a bare
/// counter is sufficient and keeps tables at 12 bytes per loan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct Day(pub u32);

impl Day {
    /// Days per (non-leap) year — coarse conversion for generators/tests.
    pub const PER_YEAR: u32 = 365;

    /// The start of calendar year `year` (2012-based, coarse).
    #[must_use]
    pub fn from_year(year: u32) -> Self {
        debug_assert!(year >= 2012);
        Self((year - 2012) * Self::PER_YEAR)
    }

    /// The (coarse) calendar year this day falls in.
    #[must_use]
    pub fn year(self) -> u32 {
        2012 + self.0 / Self::PER_YEAR
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_distinct_types_with_round_trip() {
        let b = BctBookId::from(7);
        assert_eq!(b.raw(), 7);
        assert_eq!(b.index(), 7);
        assert_eq!(b, BctBookId(7));
        assert_eq!(format!("{b}"), "BctBookId(7)");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(BookIdx(1) < BookIdx(2));
        assert!(UserIdx(0) < UserIdx(10));
    }

    #[test]
    fn day_year_round_trip() {
        assert_eq!(Day::from_year(2012).year(), 2012);
        assert_eq!(Day::from_year(2020).year(), 2020);
        assert_eq!(Day(Day::PER_YEAR - 1).year(), 2012);
        assert_eq!(Day(Day::PER_YEAR).year(), 2013);
    }
}
