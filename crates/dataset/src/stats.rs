//! Corpus statistics backing Section 3's characterisation and Figs. 1–2.
//!
//! * [`reading_cdfs`] — the per-user and per-book reading-count ECDFs
//!   plotted in Fig. 1;
//! * [`genre_shares`] — the share of readings per genre plotted in Fig. 2
//!   (each reading contributes its book's genre *probabilities*, so shares
//!   sum to 1 over books with genres);
//! * [`dominant_genre_share`] — the "99 % of users read two genres at least
//!   ten times more than all the other genres together" check;
//! * [`CorpusSummary`] — the headline counts reported in the dataset
//!   section.

use crate::corpus::{Corpus, Source};
use rm_util::stats::Ecdf;

/// Headline corpus statistics (the numbers quoted in Section 3).
#[derive(Debug, Clone, PartialEq)]
pub struct CorpusSummary {
    /// Books in the merged, pruned catalogue.
    pub n_books: usize,
    /// Users in total.
    pub n_users: usize,
    /// BCT users among them.
    pub n_bct_users: usize,
    /// Anobii users among them.
    pub n_anobii_users: usize,
    /// Total readings.
    pub n_readings: usize,
    /// Median readings per user.
    pub median_readings_per_user: u64,
    /// Maximum readings per user.
    pub max_readings_per_user: u64,
    /// Maximum readings per book.
    pub max_readings_per_book: u64,
}

/// Computes the headline summary.
#[must_use]
pub fn summarize(corpus: &Corpus) -> CorpusSummary {
    let per_user = corpus.readings_per_user();
    let per_book = corpus.readings_per_book();
    let user_ecdf = Ecdf::from_observations(&per_user);
    CorpusSummary {
        n_books: corpus.n_books(),
        n_users: corpus.n_users(),
        n_bct_users: corpus
            .users
            .iter()
            .filter(|u| u.source == Source::Bct)
            .count(),
        n_anobii_users: corpus
            .users
            .iter()
            .filter(|u| u.source == Source::Anobii)
            .count(),
        n_readings: corpus.n_readings(),
        median_readings_per_user: if per_user.is_empty() {
            0
        } else {
            user_ecdf.quantile(0.5)
        },
        max_readings_per_user: per_user.iter().copied().max().unwrap_or(0),
        max_readings_per_book: per_book.iter().copied().max().unwrap_or(0),
    }
}

/// The Fig. 1 CDFs: `(readings per user, readings per book)`.
#[must_use]
pub fn reading_cdfs(corpus: &Corpus) -> (Ecdf, Ecdf) {
    (
        Ecdf::from_observations(&corpus.readings_per_user()),
        Ecdf::from_observations(&corpus.readings_per_book()),
    )
}

/// The Fig. 2 bar heights: share of readings per aggregated genre,
/// descending. Each reading contributes its book's genre probability mass;
/// books without genres contribute nothing. Returns
/// `(genre label, share)` pairs; shares sum to ≤ 1 (exactly 1 when every
/// read book has genres).
#[must_use]
pub fn genre_shares(corpus: &Corpus) -> Vec<(String, f64)> {
    let mut mass = vec![0.0f64; corpus.genre_model.n_genres()];
    for r in &corpus.readings {
        for &(g, p) in &corpus.books[r.book.index()].genres {
            mass[g.0 as usize] += f64::from(p);
        }
    }
    let total = corpus.n_readings().max(1) as f64;
    let mut out: Vec<(String, f64)> = mass
        .into_iter()
        .enumerate()
        .map(|(g, m)| (corpus.genre_model.labels()[g].clone(), m / total))
        .collect();
    out.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    out
}

/// Fraction of users whose top-2 genres are read at least `ratio` times
/// more than all their other genres combined (the paper reports 0.99 at
/// ratio 10). Each reading counts toward its book's *top-probability*
/// genre — the natural "what genre did they read" attribution; spreading a
/// reading across the book's full probability profile would dilute every
/// user below the 10× bar by construction. Users with fewer than
/// `min_readings` readings are skipped.
#[must_use]
pub fn dominant_genre_share(corpus: &Corpus, ratio: f64, min_readings: usize) -> f64 {
    // Top genre per book, precomputed.
    let top_genre: Vec<Option<u8>> = corpus
        .books
        .iter()
        .map(|b| {
            b.genres
                .iter()
                .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite prob"))
                .map(|&(g, _)| g.0)
        })
        .collect();

    let by_user = corpus.readings_by_user();
    let mut qualifying = 0usize;
    let mut dominant = 0usize;
    for readings in by_user {
        if readings.len() < min_readings {
            continue;
        }
        let mut counts = vec![0u64; corpus.genre_model.n_genres()];
        for r in readings {
            if let Some(g) = top_genre[r.book.index()] {
                counts[g as usize] += 1;
            }
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        if counts.len() < 2 {
            continue;
        }
        qualifying += 1;
        let top2 = counts[0] + counts[1];
        let rest: u64 = counts[2..].iter().sum();
        if top2 as f64 >= ratio * rest as f64 {
            dominant += 1;
        }
    }
    if qualifying == 0 {
        0.0
    } else {
        dominant as f64 / qualifying as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{Book, Reading, User};
    use crate::genre::{AggGenreId, GenreModel};
    use crate::ids::{AnobiiItemId, BctBookId, BookIdx, Day, UserIdx};

    fn book(genres: Vec<(AggGenreId, f32)>) -> Book {
        Book {
            title: "T".into(),
            authors: vec!["A".into()],
            plot: String::new(),
            keywords: vec![],
            genres,
            bct_id: BctBookId(0),
            anobii_id: AnobiiItemId(0),
        }
    }

    fn corpus() -> Corpus {
        // Book 0: pure Comics; book 1: half Comics half Thriller; book 2:
        // pure Fantasy.
        let books = vec![
            book(vec![(AggGenreId(0), 1.0)]),
            book(vec![(AggGenreId(0), 0.5), (AggGenreId(1), 0.5)]),
            book(vec![(AggGenreId(2), 1.0)]),
        ];
        let users = vec![
            User {
                source: Source::Bct,
                raw_id: 0,
            },
            User {
                source: Source::Anobii,
                raw_id: 1,
            },
        ];
        let readings = vec![
            Reading {
                user: UserIdx(0),
                book: BookIdx(0),
                date: Day(0),
            },
            Reading {
                user: UserIdx(0),
                book: BookIdx(1),
                date: Day(0),
            },
            Reading {
                user: UserIdx(1),
                book: BookIdx(0),
                date: Day(0),
            },
            Reading {
                user: UserIdx(1),
                book: BookIdx(2),
                date: Day(0),
            },
        ];
        Corpus {
            books,
            users,
            readings,
            genre_model: GenreModel::identity(),
        }
    }

    #[test]
    fn summary_counts() {
        let s = summarize(&corpus());
        assert_eq!(s.n_books, 3);
        assert_eq!(s.n_users, 2);
        assert_eq!(s.n_bct_users, 1);
        assert_eq!(s.n_anobii_users, 1);
        assert_eq!(s.n_readings, 4);
        assert_eq!(s.median_readings_per_user, 2);
        assert_eq!(s.max_readings_per_user, 2);
        assert_eq!(s.max_readings_per_book, 2);
    }

    #[test]
    fn cdfs_reflect_counts() {
        let (per_user, per_book) = reading_cdfs(&corpus());
        assert_eq!(per_user.sample_size(), 2);
        assert_eq!(per_book.sample_size(), 3);
        assert_eq!(per_book.eval(1), 2.0 / 3.0);
        assert_eq!(per_book.eval(2), 1.0);
    }

    #[test]
    fn genre_shares_sum_to_one_and_order() {
        let shares = genre_shares(&corpus());
        let total: f64 = shares.iter().map(|&(_, s)| s).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // Comics: 2 pure readings + 2×0.5 = wait, book1 read once → 0.5.
        // Comics mass = 1 + 0.5 + 1 = 2.5 of 4 readings.
        assert_eq!(shares[0].0, "Comics");
        assert!((shares[0].1 - 2.5 / 4.0).abs() < 1e-9);
        // Descending order.
        for w in shares.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn empty_corpus_statistics() {
        let c = Corpus {
            books: vec![],
            users: vec![],
            readings: vec![],
            genre_model: GenreModel::identity(),
        };
        let s = summarize(&c);
        assert_eq!(s.n_readings, 0);
        assert_eq!(s.median_readings_per_user, 0);
        assert_eq!(dominant_genre_share(&c, 10.0, 1), 0.0);
    }

    #[test]
    fn dominant_genre_share_detects_concentration() {
        // User 0 reads only Comics books → top-2 mass trivially dominates.
        let mut c = corpus();
        c.readings = vec![
            Reading {
                user: UserIdx(0),
                book: BookIdx(0),
                date: Day(0),
            },
            Reading {
                user: UserIdx(0),
                book: BookIdx(1),
                date: Day(0),
            },
        ];
        assert_eq!(dominant_genre_share(&c, 10.0, 1), 1.0);
    }

    #[test]
    fn dominant_genre_share_detects_spread() {
        // A user spread evenly over 3 genres: top-2 = 2×, rest = 1× →
        // fails a ratio of 10.
        let mut c = corpus();
        c.readings = vec![
            Reading {
                user: UserIdx(0),
                book: BookIdx(0),
                date: Day(0),
            },
            Reading {
                user: UserIdx(0),
                book: BookIdx(2),
                date: Day(0),
            },
        ];
        // Add a third book so a real third genre appears.
        c.readings.push(Reading {
            user: UserIdx(0),
            book: BookIdx(1),
            date: Day(0),
        });
        // Top-genre counts: Comics 1, Thriller 1, Fantasy 1 → top2 = 2,
        // rest = 1 → ratio 2, failing the 10× bar but passing a 2× bar.
        assert_eq!(dominant_genre_share(&c, 10.0, 1), 0.0);
        assert_eq!(dominant_genre_share(&c, 2.0, 1), 1.0);
    }
}
