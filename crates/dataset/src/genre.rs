//! Genre taxonomy and post-processing.
//!
//! Anobii books carry crowd-sourced genre votes over a 41-label taxonomy
//! (Section 3). The paper's preparation does three things that this module
//! reproduces exactly:
//!
//! 1. **pruning** — genres "associated with almost all books or with very
//!    few books" are dropped (the paper names *Fiction and Literature*,
//!    *Textbooks*, *References*, *Self Help*);
//! 2. **aggregation** — remaining genres are merged "to have the
//!    distribution of genres among books as balanced as possible",
//!    accepting a merge when it improves the entropy-balance criterion;
//! 3. **top-4 selection** — each book keeps its 4 most-voted genres with
//!    probabilities proportional to vote counts (summing to one).

use rm_util::stats::entropy;
use std::collections::HashMap;

/// Identifier of a raw (pre-aggregation) genre — an index into
/// [`RAW_GENRES`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GenreId(pub u8);

/// Identifier of an aggregated genre (post-processing), indexing
/// [`GenreModel::labels`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AggGenreId(pub u8);

/// The 41-label taxonomy used by the Anobii items table.
///
/// Labels follow the ones the paper names (Comics, Thriller, Fantasy,
/// Fiction and Literature, Textbooks, References, Self Help) completed with
/// the customary Anobii shelf genres.
pub const RAW_GENRES: [&str; 41] = [
    "Comics",
    "Thriller",
    "Fantasy",
    "Fiction and Literature",
    "Mystery",
    "Crime",
    "Science Fiction",
    "Horror",
    "Romance",
    "Historical Fiction",
    "Biography",
    "Autobiography",
    "Memoir",
    "History",
    "Philosophy",
    "Psychology",
    "Science",
    "Mathematics",
    "Technology",
    "Nature",
    "Travel",
    "Cooking",
    "Art",
    "Music",
    "Poetry",
    "Drama",
    "Classics",
    "Young Adult",
    "Children",
    "Adventure",
    "Humor",
    "Religion",
    "Politics",
    "Economics",
    "Sociology",
    "Sport",
    "Textbooks",
    "References",
    "Self Help",
    "Health",
    "Education",
];

/// Number of raw genres.
pub const N_RAW_GENRES: usize = RAW_GENRES.len();

/// Genres the paper drops outright for being near-universal or near-absent.
pub const DROPPED_GENRES: [&str; 4] = [
    "Fiction and Literature",
    "Textbooks",
    "References",
    "Self Help",
];

/// Maximum genres kept per book after processing.
pub const TOP_GENRES_PER_BOOK: usize = 4;

/// Configuration of the genre pipeline.
#[derive(Debug, Clone, PartialEq)]
pub struct GenreConfig {
    /// Drop genres attached to more than this fraction of books
    /// ("associated with almost all books").
    pub max_book_share: f64,
    /// Drop genres attached to fewer than this fraction of books
    /// ("associated with very few books").
    pub min_book_share: f64,
    /// Stop merging when this many aggregated genres remain.
    pub min_genres: usize,
}

impl Default for GenreConfig {
    fn default() -> Self {
        Self {
            max_book_share: 0.8,
            min_book_share: 0.002,
            min_genres: 12,
        }
    }
}

/// The fitted genre model: which raw genres survive, how they map onto
/// aggregated genres, and the aggregated labels.
#[derive(Debug, Clone)]
pub struct GenreModel {
    /// `mapping[raw.0]` is the aggregated genre, or `None` if dropped.
    mapping: Vec<Option<AggGenreId>>,
    /// Human-readable label per aggregated genre (merged labels joined
    /// with `+`).
    labels: Vec<String>,
}

impl GenreModel {
    /// Fits the model from per-genre occurrence statistics.
    ///
    /// * `book_counts[g]` — number of books genre `g` is attached to;
    /// * `vote_counts[g]` — total user votes for genre `g`;
    /// * `n_books` — catalogue size (for the share-based pruning).
    ///
    /// Aggregation greedily merges the two lowest-vote aggregated genres
    /// while the merge improves the *balance* of the vote distribution —
    /// normalised entropy `H / ln(K)` — and more than `config.min_genres`
    /// genres remain. Merging two categories always lowers raw entropy but
    /// can raise normalised entropy when it removes a tiny category, which
    /// is exactly the "as balanced as possible" reading of the paper.
    #[must_use]
    pub fn fit(
        book_counts: &[u64],
        vote_counts: &[u64],
        n_books: usize,
        config: &GenreConfig,
    ) -> Self {
        assert_eq!(book_counts.len(), N_RAW_GENRES);
        assert_eq!(vote_counts.len(), N_RAW_GENRES);

        // Step 1: prune by name and by share.
        let mut kept: Vec<usize> = Vec::new();
        for (g, name) in RAW_GENRES.iter().enumerate() {
            if DROPPED_GENRES.contains(name) {
                continue;
            }
            let share = if n_books == 0 {
                0.0
            } else {
                book_counts[g] as f64 / n_books as f64
            };
            if share > config.max_book_share || share < config.min_book_share {
                continue;
            }
            kept.push(g);
        }

        // Step 2: greedy balance-improving merges on vote counts.
        // Each group is (member raw ids, total votes).
        let mut groups: Vec<(Vec<usize>, u64)> =
            kept.iter().map(|&g| (vec![g], vote_counts[g])).collect();

        loop {
            if groups.len() <= config.min_genres.max(2) {
                break;
            }
            let counts: Vec<u64> = groups.iter().map(|(_, c)| *c).collect();
            let balance_now = normalized_entropy(&counts);

            // Candidate: merge the two smallest groups.
            let (a, b) = two_smallest(&counts);
            let mut merged = counts.clone();
            merged[a] += merged[b];
            merged.swap_remove(b);
            let balance_after = normalized_entropy(&merged);

            if balance_after <= balance_now {
                break;
            }
            // Remove the higher index first so the lower one stays valid
            // after swap_remove.
            let (lo, hi) = if a < b { (a, b) } else { (b, a) };
            let (mut members_hi, votes_hi) = groups.swap_remove(hi);
            groups[lo].0.append(&mut members_hi);
            groups[lo].1 += votes_hi;
        }

        // Deterministic output order: by descending votes, ties by first
        // member id.
        groups.sort_by(|x, y| y.1.cmp(&x.1).then(x.0[0].cmp(&y.0[0])));

        let mut mapping: Vec<Option<AggGenreId>> = vec![None; N_RAW_GENRES];
        let mut labels = Vec::with_capacity(groups.len());
        for (agg_idx, (members, _)) in groups.iter().enumerate() {
            let mut sorted = members.clone();
            sorted.sort_unstable();
            labels.push(
                sorted
                    .iter()
                    .map(|&g| RAW_GENRES[g])
                    .collect::<Vec<_>>()
                    .join("+"),
            );
            for &g in members {
                mapping[g] = Some(AggGenreId(agg_idx as u8));
            }
        }

        Self { mapping, labels }
    }

    /// Label-only model: no raw-genre mapping (every raw genre reads as
    /// dropped), aggregated labels as given. Used when deserialising a
    /// corpus, where the aggregation mapping is no longer needed.
    #[must_use]
    pub fn from_labels(labels: Vec<String>) -> Self {
        Self {
            mapping: vec![None; N_RAW_GENRES],
            labels,
        }
    }

    /// Identity model: every raw genre maps to itself (used by unit tests
    /// and by pipelines that skip aggregation).
    #[must_use]
    pub fn identity() -> Self {
        Self {
            mapping: (0..N_RAW_GENRES)
                .map(|g| Some(AggGenreId(g as u8)))
                .collect(),
            labels: RAW_GENRES.iter().map(|&s| s.to_owned()).collect(),
        }
    }

    /// Aggregated genre of a raw genre; `None` when dropped.
    #[must_use]
    pub fn map(&self, raw: GenreId) -> Option<AggGenreId> {
        self.mapping[raw.0 as usize]
    }

    /// Number of aggregated genres.
    #[must_use]
    pub fn n_genres(&self) -> usize {
        self.labels.len()
    }

    /// Label of an aggregated genre.
    #[must_use]
    pub fn label(&self, g: AggGenreId) -> &str {
        &self.labels[g.0 as usize]
    }

    /// All aggregated labels in id order.
    #[must_use]
    pub fn labels(&self) -> &[String] {
        &self.labels
    }

    /// Processes one book's raw genre votes into its final genre profile:
    /// votes are re-keyed to aggregated genres, the top
    /// [`TOP_GENRES_PER_BOOK`] by votes are kept, and probabilities are
    /// vote-proportional (summing to 1). Returns an empty vector when no
    /// votes survive.
    #[must_use]
    pub fn process_votes(&self, votes: &[(GenreId, u32)]) -> Vec<(AggGenreId, f32)> {
        let mut agg: HashMap<AggGenreId, u64> = HashMap::new();
        for &(raw, v) in votes {
            if let Some(a) = self.map(raw) {
                *agg.entry(a).or_insert(0) += u64::from(v);
            }
        }
        let mut list: Vec<(AggGenreId, u64)> = agg.into_iter().filter(|&(_, v)| v > 0).collect();
        // Descending votes, ascending id for determinism.
        list.sort_by(|x, y| y.1.cmp(&x.1).then(x.0.cmp(&y.0)));
        list.truncate(TOP_GENRES_PER_BOOK);
        let total: u64 = list.iter().map(|&(_, v)| v).sum();
        if total == 0 {
            return Vec::new();
        }
        list.into_iter()
            .map(|(g, v)| (g, v as f32 / total as f32))
            .collect()
    }
}

/// Normalised Shannon entropy `H / ln(K)`; defined as 1.0 for `K <= 1`.
#[must_use]
fn normalized_entropy(counts: &[u64]) -> f64 {
    if counts.len() <= 1 {
        return 1.0;
    }
    entropy(counts) / (counts.len() as f64).ln()
}

/// Indices of the two smallest values (`counts.len() >= 2`).
fn two_smallest(counts: &[u64]) -> (usize, usize) {
    debug_assert!(counts.len() >= 2);
    let mut a = 0usize; // smallest
    let mut b = 1usize; // second smallest
    if counts[b] < counts[a] {
        std::mem::swap(&mut a, &mut b);
    }
    for i in 2..counts.len() {
        if counts[i] < counts[a] {
            b = a;
            a = i;
        } else if counts[i] < counts[b] {
            b = i;
        }
    }
    (a, b)
}

/// Looks up a raw genre id by label (test/datagen helper).
#[must_use]
pub fn genre_id(label: &str) -> Option<GenreId> {
    RAW_GENRES
        .iter()
        .position(|&g| g == label)
        .map(|i| GenreId(i as u8))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn uniform_counts(per_genre: u64) -> (Vec<u64>, Vec<u64>) {
        (
            vec![per_genre; N_RAW_GENRES],
            vec![per_genre * 10; N_RAW_GENRES],
        )
    }

    #[test]
    fn named_drops_always_apply() {
        let (books, votes) = uniform_counts(100);
        let m = GenreModel::fit(&books, &votes, 1000, &GenreConfig::default());
        for name in DROPPED_GENRES {
            let id = genre_id(name).unwrap();
            assert_eq!(m.map(id), None, "{name} should be dropped");
        }
        assert!(m.map(genre_id("Comics").unwrap()).is_some());
    }

    #[test]
    fn share_pruning_drops_extremes() {
        let (mut books, votes) = uniform_counts(100);
        let comics = genre_id("Comics").unwrap().0 as usize;
        let sport = genre_id("Sport").unwrap().0 as usize;
        books[comics] = 990; // attached to 99 % of books
        books[sport] = 1; // attached to 0.1 %
        let m = GenreModel::fit(&books, &votes, 1000, &GenreConfig::default());
        assert_eq!(m.map(GenreId(comics as u8)), None);
        assert_eq!(m.map(GenreId(sport as u8)), None);
    }

    #[test]
    fn aggregation_merges_small_genres() {
        let n_books = 10_000;
        let books = vec![500u64; N_RAW_GENRES];
        // Hugely imbalanced votes: first few genres dominate.
        let votes: Vec<u64> = (0..N_RAW_GENRES)
            .map(|g| if g < 3 { 1_000_000 } else { 100 })
            .collect();
        let m = GenreModel::fit(&books, &votes, n_books, &GenreConfig::default());
        // Small genres must have been merged: fewer agg genres than kept raw.
        assert!(m.n_genres() < N_RAW_GENRES - DROPPED_GENRES.len());
        assert!(m.n_genres() >= GenreConfig::default().min_genres.min(2));
        // Some label should be a merged one.
        assert!(m.labels().iter().any(|l| l.contains('+')));
    }

    #[test]
    fn balanced_votes_need_no_merging() {
        let (books, votes) = uniform_counts(500);
        let m = GenreModel::fit(&books, &votes, 10_000, &GenreConfig::default());
        assert_eq!(m.n_genres(), N_RAW_GENRES - DROPPED_GENRES.len());
        assert!(m.labels().iter().all(|l| !l.contains('+')));
    }

    #[test]
    fn mapping_is_total_over_agg_range() {
        let (books, votes) = uniform_counts(500);
        let m = GenreModel::fit(&books, &votes, 10_000, &GenreConfig::default());
        for g in 0..N_RAW_GENRES {
            if let Some(a) = m.map(GenreId(g as u8)) {
                assert!((a.0 as usize) < m.n_genres());
            }
        }
    }

    #[test]
    fn process_votes_top4_and_probabilities() {
        let m = GenreModel::identity();
        let votes: Vec<(GenreId, u32)> =
            (0..6).map(|g| (GenreId(g), (g + 1) as u32 * 10)).collect();
        let out = m.process_votes(&votes);
        assert_eq!(out.len(), TOP_GENRES_PER_BOOK);
        // Kept the top-voted genres (5, 4, 3, 2 → votes 60, 50, 40, 30).
        assert_eq!(out[0].0, AggGenreId(5));
        let total: f32 = out.iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-6);
        assert!((out[0].1 - 60.0 / 180.0).abs() < 1e-6);
    }

    #[test]
    fn process_votes_dropped_genres_excluded() {
        let (books, votes) = uniform_counts(100);
        let m = GenreModel::fit(&books, &votes, 1000, &GenreConfig::default());
        let dropped = genre_id("Self Help").unwrap();
        let comics = genre_id("Comics").unwrap();
        let out = m.process_votes(&[(dropped, 100), (comics, 1)]);
        assert_eq!(out.len(), 1);
        assert!((out[0].1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn process_votes_empty_when_nothing_survives() {
        let m = GenreModel::identity();
        assert!(m.process_votes(&[]).is_empty());
    }

    #[test]
    fn process_votes_folds_merged_genres() {
        // Force a model where two genres merge, then votes for both should
        // combine under one aggregated id.
        let n_books = 10_000;
        let books = vec![500u64; N_RAW_GENRES];
        let votes: Vec<u64> = (0..N_RAW_GENRES)
            .map(|g| if g < 2 { 1_000_000 } else { 10 })
            .collect();
        let m = GenreModel::fit(&books, &votes, n_books, &GenreConfig::default());
        // Find two raw genres mapped to the same aggregate.
        let mut by_agg: HashMap<AggGenreId, Vec<GenreId>> = HashMap::new();
        for g in 0..N_RAW_GENRES {
            if let Some(a) = m.map(GenreId(g as u8)) {
                by_agg.entry(a).or_default().push(GenreId(g as u8));
            }
        }
        let merged = by_agg
            .values()
            .find(|v| v.len() >= 2)
            .expect("some merge happened");
        let out = m.process_votes(&[(merged[0], 5), (merged[1], 7)]);
        assert_eq!(out.len(), 1);
        assert!((out[0].1 - 1.0).abs() < 1e-6);
    }

    #[test]
    fn two_smallest_finds_correct_pair() {
        let (a, b) = two_smallest(&[5, 1, 3, 0, 9]);
        assert_eq!(a, 3);
        assert_eq!(b, 1);
    }

    #[test]
    fn normalized_entropy_bounds() {
        assert_eq!(normalized_entropy(&[10]), 1.0);
        assert!((normalized_entropy(&[5, 5]) - 1.0).abs() < 1e-12);
        assert!(normalized_entropy(&[1, 999]) < 0.1);
    }

    #[test]
    fn genre_id_lookup() {
        assert_eq!(genre_id("Comics"), Some(GenreId(0)));
        assert_eq!(genre_id("Nonexistent"), None);
    }
}
