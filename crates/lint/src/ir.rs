//! Item IR: a brace-tree recovery of `fn` / `impl` / `mod` / `use`
//! structure on top of the token [`crate::lexer`] — deliberately *not* a
//! full AST (no expressions, no types, no macro expansion).
//!
//! The parser walks a file's token stream once, tracking a scope stack of
//! modules and `impl` / `trait` owners. Function bodies are consumed
//! atomically: when a `fn` item is found, its brace-matched body is handed
//! to a dedicated body scanner that records
//!
//! * **call sites** — bare calls (`helper(…)`), path calls
//!   (`Vec::new(…)`, `crate::pipeline::merge_into(…)`) and method calls
//!   (`.push(…)`, with a `self.` receiver flag) — resolved into call-graph
//!   edges by [`crate::resolve`];
//! * **facts** — the behaviours the reachability rules care about:
//!   allocation (`Vec::new` / `push` / `to_vec` / `collect` / `format!` /
//!   `clone` / `Box::new`), may-panic (`unwrap` / `expect` / `panic!`),
//!   float accumulation, nondeterministic hash iteration, and the local
//!   hash-iteration → float-accumulation taint (reusing rule 4's
//!   shadowing-aware machinery from [`crate::rules`]);
//! * **counters** — indexing sites and `assert!`-family sites. These are
//!   deliberate contract checks in this codebase, so they are *counted*
//!   in the report rather than raised as findings (DESIGN.md §19).
//!
//! Known, documented resolution limits: calls through locally-bound
//! callable values (`f(x)` for a closure parameter, a `let`-bound
//! closure, or a nested `fn`) create no *edge* — but their bodies, when
//! defined inside this item, are scanned as part of it, so their facts
//! are attributed at the definition site and nothing is lost for the
//! reachability rules. Fn-reference values passed without parentheses
//! (`.map(Option::unwrap_or_default)`) create no edge, and closures in
//! `static` initializers are attributed to no function. The analysis
//! fails closed: anything else it cannot resolve is reported, and
//! unresolved calls inside a serve root's closure fail the lint.

use crate::lexer::{lex, mark_test_regions, TokKind, Token};
use std::collections::{BTreeMap, BTreeSet};

/// A function-level behaviour fact recorded by the body scanner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FactKind {
    /// Heap allocation (constructor, growing method, or alloc macro).
    Alloc,
    /// May abort the thread: `unwrap` / `expect` / `panic!`-family.
    Panic,
    /// Manual f32 accumulation outside `rm_sparse::vecops` (rule 6 shape).
    FloatAccum,
    /// `HashMap` / `HashSet` iteration (rule 4 shape).
    HashIter,
    /// Hash iteration feeding an f32 accumulation in the same body.
    TaintedFloatAccum,
}

impl FactKind {
    /// Stable lowercase name used in reports.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FactKind::Alloc => "alloc",
            FactKind::Panic => "panic",
            FactKind::FloatAccum => "float-accum",
            FactKind::HashIter => "hash-iter",
            FactKind::TaintedFloatAccum => "tainted-float-accum",
        }
    }
}

/// One recorded fact with its source position and a short `what` label
/// (e.g. `".unwrap()"`, `"Vec::with_capacity(…)"`, `"format!(…)"`).
#[derive(Debug, Clone)]
pub struct Fact {
    /// Behaviour class.
    pub kind: FactKind,
    /// Short human label for diagnostics and the report.
    pub what: String,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// How a call site was written.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)` — free function in scope.
    Bare,
    /// `a::b::name(…)` — path call; segments kept for resolution.
    Path,
    /// `.name(…)` — method call; `on_self` when the receiver token is
    /// literally `self` (enables owner-first resolution).
    Method {
        /// Receiver is literally `self`.
        on_self: bool,
    },
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Shape of the call.
    pub kind: CallKind,
    /// Called name (last path segment for path calls).
    pub name: String,
    /// Full path segments (`["Vec", "new"]`); single-element for bare.
    pub segs: Vec<String>,
    /// 1-based source line.
    pub line: u32,
    /// 1-based source column.
    pub col: u32,
}

/// One function item with everything the call graph needs.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// `impl` / `trait` owner type name, if any.
    pub owner: Option<String>,
    /// True when the owner scope is a `trait` block (defaulted bodies).
    pub owner_is_trait: bool,
    /// Module path within the crate (empty at crate root).
    pub module: Vec<String>,
    /// Fully qualified name: `crate::module::Owner::name`.
    pub qual: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Inside `#[cfg(test)]` / `#[test]` or a `tests/` file.
    pub is_test: bool,
    /// First parameter is a `self` receiver — only these are candidates
    /// for `.name(…)` method-call resolution.
    pub has_self: bool,
    /// Call sites in declaration order.
    pub calls: Vec<CallSite>,
    /// Behaviour facts in declaration order.
    pub facts: Vec<Fact>,
    /// Indexing sites (`x[i]`) — counted, not findings.
    pub index_sites: u32,
    /// `assert!` / `assert_eq!` / `assert_ne!` sites — counted.
    pub assert_sites: u32,
    /// Names bound inside the item: parameters, `let` bindings, closure
    /// parameters and nested `fn` definitions. A bare call to one of
    /// these invokes a local callable value (whose body, if defined here,
    /// is already scanned as part of this item), so the resolver skips it
    /// rather than reporting it unresolved.
    pub locals: BTreeSet<String>,
}

/// Parsed item structure of one source file.
#[derive(Debug, Clone)]
pub struct FileIr {
    /// Workspace-relative path with `/` separators.
    pub path: String,
    /// Crate name (`rm_core`, `reading_machine`, `rm_bench_bin_ann_bench`).
    pub crate_name: String,
    /// Module path of the file within the crate.
    pub module: Vec<String>,
    /// `use` aliases: local name → path segments as written (seg 0 may be
    /// `crate` / `super` / `self` or an external / workspace crate name).
    pub uses: BTreeMap<String, Vec<String>>,
    /// Glob imports (`use x::*`): prefix segments as written.
    pub globs: Vec<Vec<String>>,
    /// Functions in declaration order.
    pub fns: Vec<FnItem>,
}

/// Map a workspace-relative path to (crate name, module path, tests-dir?).
///
/// `crates/core/src/bpr.rs` → (`rm_core`, `[bpr]`); `src/bin/x.rs` and
/// `tests/y.rs` become synthetic crates (`rm_bench_bin_x`,
/// `rm_core_tests_y`) so their items never collide with library modules.
fn crate_and_module(path: &str) -> (String, Vec<String>, bool) {
    let parts: Vec<&str> = path.split('/').collect();
    let stem = |s: &str| s.trim_end_matches(".rs").replace('-', "_");
    if parts.len() >= 3 && parts[0] == "crates" {
        let dir = parts[1];
        let pkg = if dir == "reading-machine" {
            "reading_machine".to_string()
        } else {
            format!("rm_{}", dir.replace('-', "_"))
        };
        let rest = &parts[2..];
        if rest[0] == "src" && rest.len() >= 2 {
            let tail = &rest[1..];
            if tail == ["lib.rs"] || tail == ["main.rs"] {
                return (pkg, Vec::new(), false);
            }
            if tail[0] == "bin" && tail.len() == 2 {
                return (format!("{pkg}_bin_{}", stem(tail[1])), Vec::new(), false);
            }
            let mut module: Vec<String> = tail.iter().map(|s| stem(s)).collect();
            if module.last().is_some_and(|m| m == "mod") {
                module.pop();
            }
            return (pkg, module, false);
        }
        if rest[0] == "tests" || rest[0] == "benches" || rest[0] == "examples" {
            let name = stem(rest.last().unwrap_or(&""));
            return (format!("{pkg}_{}_{name}", rest[0]), Vec::new(), true);
        }
        return (pkg, Vec::new(), false);
    }
    ("unknown".to_string(), Vec::new(), false)
}

/// Reserved words that can never be a bare call target.
const KEYWORDS: &[&str] = &[
    "if", "else", "match", "while", "for", "loop", "return", "break", "continue", "let", "mut",
    "ref", "move", "in", "as", "where", "unsafe", "dyn", "impl", "fn", "pub", "use", "mod",
    "struct", "enum", "union", "trait", "type", "const", "static", "extern", "crate", "super",
    "self", "Self", "box", "async", "await", "true", "false", "yield",
];

/// Methods that grow or create heap storage (recorded as [`FactKind::Alloc`]).
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "to_vec",
    "collect",
    "clone",
    "cloned",
    "to_string",
    "to_owned",
    "extend",
    "extend_from_slice",
    "append",
    "resize",
    "resize_with",
    "reserve",
    "reserve_exact",
    "split_off",
];

/// Owner types whose `new` / `with_capacity` / `from` / `from_iter`
/// constructors allocate.
const ALLOC_TYPES: &[&str] = &[
    "Vec",
    "VecDeque",
    "String",
    "Box",
    "Arc",
    "Rc",
    "BTreeMap",
    "BTreeSet",
    "HashMap",
    "HashSet",
    "BinaryHeap",
];

/// Constructor names on [`ALLOC_TYPES`] that allocate.
const ALLOC_CTORS: &[&str] = &["new", "with_capacity", "from", "from_iter"];

/// Parse one file into its item IR. `path` must be workspace-relative
/// with `/` separators (as produced by the engine's file walker).
#[must_use]
pub fn parse_file(path: &str, src: &str) -> FileIr {
    let mut tokens = lex(src);
    mark_test_regions(&mut tokens);
    let (crate_name, module_base, tests_dir) = crate_and_module(path);
    let mut file = FileIr {
        path: path.to_string(),
        crate_name,
        module: module_base,
        uses: BTreeMap::new(),
        globs: Vec::new(),
        fns: Vec::new(),
    };
    Parser {
        t: &tokens,
        file: &mut file,
        tests_dir,
    }
    .run();
    file
}

/// One scope on the item-parser stack. Every variant corresponds to
/// exactly one consumed `{`, so a `}` always pops exactly one scope.
enum Scope {
    /// `mod name { … }`.
    Mod(String),
    /// `impl [Trait for] Type { … }` or `trait Name { … }`.
    Owner {
        /// Type (for `impl`) or trait (for `trait`) name.
        name: String,
        /// True for `trait` blocks: defaulted bodies, dyn-dispatch targets.
        is_trait: bool,
    },
    /// Any other `{`.
    Brace,
}

struct Parser<'a> {
    t: &'a [Token],
    file: &'a mut FileIr,
    tests_dir: bool,
}

impl Parser<'_> {
    /// Index just past the brace/bracket/paren pair opening at `open`.
    fn skip_matched(&self, open: usize) -> usize {
        let open_ch = self.t[open].text.chars().next().unwrap_or('{');
        let close_ch = match open_ch {
            '(' => ')',
            '[' => ']',
            _ => '}',
        };
        let mut depth = 0i32;
        let mut j = open;
        while j < self.t.len() {
            if self.t[j].is_punct(open_ch) {
                depth += 1;
            } else if self.t[j].is_punct(close_ch) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.t.len()
    }

    /// Scan from `from` to the first `{` (returned as `Ok`) or `;`
    /// (returned as `Err`) at paren *and bracket* depth 0 — used to find
    /// item bodies past generics, where-clauses and tuple-struct field
    /// lists. Bracket depth matters because array types carry semicolons
    /// (`fn f() -> [f32; N]`).
    fn find_body(&self, from: usize) -> Result<usize, usize> {
        let mut paren = 0i32;
        let mut bracket = 0i32;
        let mut j = from;
        while j < self.t.len() {
            let tok = &self.t[j];
            if tok.kind == TokKind::Punct {
                match tok.text.as_bytes().first() {
                    Some(b'(') => paren += 1,
                    Some(b')') => paren -= 1,
                    Some(b'[') => bracket += 1,
                    Some(b']') => bracket -= 1,
                    Some(b'{') if paren == 0 && bracket == 0 => return Ok(j),
                    Some(b';') if paren == 0 && bracket == 0 => return Err(j),
                    _ => {}
                }
            }
            j += 1;
        }
        Err(self.t.len())
    }

    fn run(&mut self) {
        let mut scopes: Vec<Scope> = Vec::new();
        let mut i = 0;
        while i < self.t.len() {
            let tok = &self.t[i];
            if tok.kind == TokKind::Punct {
                if tok.is_punct('{') {
                    scopes.push(Scope::Brace);
                } else if tok.is_punct('}') {
                    scopes.pop();
                }
                i += 1;
                continue;
            }
            if tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            match tok.text.as_str() {
                "use" => i = self.parse_use(i),
                "mod" => {
                    if self.t.get(i + 1).is_some_and(|x| x.kind == TokKind::Ident)
                        && self.t.get(i + 2).is_some_and(|x| x.is_punct('{'))
                    {
                        scopes.push(Scope::Mod(self.t[i + 1].text.clone()));
                        i += 3;
                    } else {
                        // `mod name;` — out-of-line, parsed via its own file.
                        i += 1;
                    }
                }
                "impl" => i = self.parse_impl(i, &mut scopes),
                "trait" => i = self.parse_trait(i, &mut scopes),
                "fn" => i = self.parse_fn(i, &scopes),
                "macro_rules" => {
                    // `macro_rules! name { … }` — macro bodies may contain
                    // `fn` fragments; never item-parse them.
                    let mut j = i + 1;
                    while j < self.t.len() && !self.t[j].is_punct('{') {
                        if self.t[j].is_punct(';') {
                            break;
                        }
                        j += 1;
                    }
                    i = if self.t.get(j).is_some_and(|x| x.is_punct('{')) {
                        self.skip_matched(j)
                    } else {
                        j + 1
                    };
                }
                "struct" | "enum" | "union" => match self.find_body(i + 1) {
                    Ok(open) => i = self.skip_matched(open),
                    Err(semi) => i = semi + 1,
                },
                "static" | "const" | "type" => {
                    // `const fn` / `static ref`-less: if the next token is
                    // another item keyword, fall through to it; otherwise
                    // skip the whole `= value;` (initializers may contain
                    // closures we must not item-parse).
                    if self
                        .t
                        .get(i + 1)
                        .is_some_and(|x| x.is_ident("fn") || x.is_ident("unsafe"))
                    {
                        i += 1;
                    } else {
                        i = crate::rules::stmt_end(self.t, i) + 1;
                    }
                }
                _ => {
                    // Item-level macro invocation `name! { … }` — skip its
                    // body (e.g. `proptest! { fn … }` would otherwise leak
                    // phantom items).
                    if self.t.get(i + 1).is_some_and(|x| x.is_punct('!'))
                        && self
                            .t
                            .get(i + 2)
                            .is_some_and(|x| x.is_punct('{') || x.is_punct('(') || x.is_punct('['))
                    {
                        i = self.skip_matched(i + 2);
                    } else {
                        i += 1;
                    }
                }
            }
        }
    }

    /// Parse a `use` tree starting at the `use` keyword; returns the index
    /// past the terminating `;`. Handles groups, `as` aliases and globs.
    fn parse_use(&mut self, i: usize) -> usize {
        let mut j = i + 1;
        let prefix = Vec::new();
        j = self.parse_use_tree(j, &prefix);
        while j < self.t.len() && !self.t[j].is_punct(';') {
            j += 1;
        }
        j + 1
    }

    fn parse_use_tree(&mut self, mut j: usize, prefix: &[String]) -> usize {
        let mut segs: Vec<String> = prefix.to_vec();
        loop {
            let Some(tok) = self.t.get(j) else {
                return j;
            };
            if tok.kind == TokKind::Ident && tok.text != "as" {
                segs.push(tok.text.clone());
                j += 1;
                // `::` continuation?
                if self.t.get(j).is_some_and(|x| x.is_punct(':'))
                    && self.t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                {
                    j += 2;
                    if self.t.get(j).is_some_and(|x| x.is_punct('{')) {
                        // Group: comma-separated subtrees.
                        j += 1;
                        loop {
                            match self.t.get(j) {
                                Some(x) if x.is_punct('}') => return j + 1,
                                Some(x) if x.is_punct(',') => j += 1,
                                Some(_) => j = self.parse_use_tree(j, &segs),
                                None => return j,
                            }
                        }
                    }
                    if self.t.get(j).is_some_and(|x| x.is_punct('*')) {
                        self.file.globs.push(segs.clone());
                        return j + 1;
                    }
                    continue;
                }
                break;
            }
            // `self` inside a group (`use x::y::{self, z}`) lands in the
            // ident arm above; anything else ends the tree.
            return j;
        }
        // Optional `as alias`.
        if self.t.get(j).is_some_and(|x| x.is_ident("as")) {
            if let Some(alias) = self.t.get(j + 1) {
                if alias.kind == TokKind::Ident && alias.text != "_" {
                    self.file.uses.insert(alias.text.clone(), segs);
                }
            }
            return j + 2;
        }
        if let Some(last) = segs.last() {
            if last == "self" {
                // `use x::y::{self}` aliases `y`.
                let name = segs[segs.len().saturating_sub(2)].clone();
                let mut path = segs.clone();
                path.pop();
                self.file.uses.insert(name, path);
            } else {
                self.file.uses.insert(last.clone(), segs);
            }
        }
        j
    }

    /// Parse an `impl [Trait for] Type` header; push an Owner scope and
    /// return the index past the opening `{`.
    fn parse_impl(&mut self, i: usize, scopes: &mut Vec<Scope>) -> usize {
        let mut j = i + 1;
        // Generics on the impl itself.
        if self.t.get(j).is_some_and(|x| x.is_punct('<')) {
            j = self.skip_angles(j);
        }
        let first = self.read_type_path(&mut j);
        let owner;
        let mut is_trait_impl = false;
        if self.t.get(j).is_some_and(|x| x.is_ident("for")) {
            j += 1;
            // Skip `&`, `&mut`, `dyn` on the self type.
            while self
                .t
                .get(j)
                .is_some_and(|x| x.is_punct('&') || x.is_ident("mut") || x.is_ident("dyn"))
            {
                j += 1;
            }
            owner = self.read_type_path(&mut j);
            is_trait_impl = true;
        } else {
            owner = first;
        }
        let _ = is_trait_impl; // trait name itself is not needed downstream
        match self.find_body(j) {
            Ok(open) => {
                scopes.push(Scope::Owner {
                    name: owner.unwrap_or_default(),
                    is_trait: false,
                });
                open + 1
            }
            Err(semi) => semi + 1,
        }
    }

    /// Parse `trait Name … { … }`; trait method defaults are dyn-dispatch
    /// targets, so the Owner scope is flagged `is_trait`.
    fn parse_trait(&mut self, i: usize, scopes: &mut Vec<Scope>) -> usize {
        let Some(name_tok) = self.t.get(i + 1).filter(|x| x.kind == TokKind::Ident) else {
            return i + 1;
        };
        let name = name_tok.text.clone();
        match self.find_body(i + 2) {
            Ok(open) => {
                scopes.push(Scope::Owner {
                    name,
                    is_trait: true,
                });
                open + 1
            }
            Err(semi) => semi + 1,
        }
    }

    /// Read a type path (`a::b::Type<…>`), returning the final segment.
    fn read_type_path(&self, j: &mut usize) -> Option<String> {
        let mut last = None;
        while let Some(tok) = self.t.get(*j) {
            if tok.kind != TokKind::Ident || tok.is_ident("for") || tok.is_ident("where") {
                break;
            }
            last = Some(tok.text.clone());
            *j += 1;
            if self.t.get(*j).is_some_and(|x| x.is_punct('<')) {
                *j = self.skip_angles(*j);
            }
            if self.t.get(*j).is_some_and(|x| x.is_punct(':'))
                && self.t.get(*j + 1).is_some_and(|x| x.is_punct(':'))
            {
                *j += 2;
            } else {
                break;
            }
        }
        last
    }

    /// Skip a `<…>` generics region starting at `<`; `->` arrows inside
    /// (return types of `Fn(…) -> X` bounds) do not close the region.
    fn skip_angles(&self, open: usize) -> usize {
        let mut depth = 0i32;
        let mut j = open;
        while j < self.t.len() {
            let tok = &self.t[j];
            if tok.is_punct('<') {
                depth += 1;
            } else if tok.is_punct('>') && !(j > 0 && self.t[j - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    return j + 1;
                }
            }
            j += 1;
        }
        self.t.len()
    }

    /// Parse a `fn` item at `i` (the `fn` keyword); scan its body and
    /// return the index past the closing brace.
    fn parse_fn(&mut self, i: usize, scopes: &[Scope]) -> usize {
        let Some(name_tok) = self.t.get(i + 1).filter(|x| x.kind == TokKind::Ident) else {
            // `fn(` — function-pointer type, not an item.
            return i + 1;
        };
        let open = match self.find_body(i + 2) {
            Ok(open) => open,
            // Body-less trait method declaration / extern decl.
            Err(semi) => return semi + 1,
        };
        let close = self.skip_matched(open) - 1;
        let mut module = self.file.module.clone();
        let mut owner = None;
        let mut owner_is_trait = false;
        for s in scopes {
            match s {
                Scope::Mod(m) => module.push(m.clone()),
                Scope::Owner { name, is_trait } => {
                    owner = Some(name.clone());
                    owner_is_trait = *is_trait;
                }
                Scope::Brace => {}
            }
        }
        let mut qual = self.file.crate_name.clone();
        for m in &module {
            qual.push_str("::");
            qual.push_str(m);
        }
        if let Some(o) = &owner {
            qual.push_str("::");
            qual.push_str(o);
        }
        qual.push_str("::");
        qual.push_str(&name_tok.text);
        // `self` receiver: the first ident inside the parameter list after
        // skipping `&`, a lifetime, and `mut` (covers `self`, `&self`,
        // `&'a mut self`, `mut self`).
        let has_self = {
            let mut k = i + 2;
            if self.t.get(k).is_some_and(|x| x.is_punct('<')) {
                k = self.skip_angles(k); // `Fn(…)` bounds may hold `(`
            }
            k += 1; // past the param list's `(`
            while self.t.get(k).is_some_and(|x| {
                x.is_punct('&') || x.kind == TokKind::Lifetime || x.is_ident("mut")
            }) {
                k += 1;
            }
            self.t.get(k).is_some_and(|x| x.is_ident("self"))
        };
        let mut item = FnItem {
            name: name_tok.text.clone(),
            owner,
            owner_is_trait,
            module,
            qual,
            line: self.t[i].line,
            col: self.t[i].col,
            is_test: self.t[i].in_test || self.tests_dir,
            has_self,
            calls: Vec::new(),
            facts: Vec::new(),
            index_sites: 0,
            assert_sites: 0,
            locals: BTreeSet::new(),
        };
        // The scan range includes the signature so rule 4's parameter
        // annotations (`m: &HashMap<…>`) are visible to the taint pass.
        scan_body(self.t, i, open, close, &mut item);
        self.file.fns.push(item);
        // Body-level `use` statements (`fn f() { use x::y; … }`) feed the
        // same file-scoped alias map: over-scoped to the whole file, which
        // is benign — aliases are consulted only when direct resolution
        // misses, and alias targets resolve identically from anywhere.
        let mut u = open + 1;
        while u < close {
            if self.t[u].is_ident("use")
                && !(self.t[u - 1].is_punct('.')
                    || self.t[u - 1].is_punct(':')
                    || self.t[u - 1].is_ident("fn"))
            {
                u = self.parse_use(u);
            } else {
                u += 1;
            }
        }
        close + 1
    }
}

/// Macro names that abort: recorded as [`FactKind::Panic`].
const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// Collect the names bound inside `t[sig_start..=close]`: typed
/// parameters and struct-pattern fields (`name :`), `let` bindings
/// (every lowercase ident of the pattern up to `=` / `;` — types
/// overcollect harmlessly), untyped closure parameters (`|a, b|`) and
/// nested `fn` names. Locals are consulted only after every real
/// resolution path has failed, so overcollection can never drop an edge —
/// it only keeps a call through a local callable value out of the
/// unresolved bucket.
fn collect_locals(t: &[Token], sig_start: usize, close: usize, locals: &mut BTreeSet<String>) {
    let is_bindable = |x: &Token| {
        x.kind == TokKind::Ident
            && !KEYWORDS.contains(&x.text.as_str())
            && x.text
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_lowercase() || c == '_')
    };
    let end = close.min(t.len().saturating_sub(1));
    let mut j = sig_start;
    while j <= end {
        let tok = &t[j];
        if tok.is_ident("let") {
            j += 1;
            while j <= end && !t[j].is_punct('=') && !t[j].is_punct(';') {
                if is_bindable(&t[j]) {
                    locals.insert(t[j].text.clone());
                }
                j += 1;
            }
            continue;
        }
        if tok.is_ident("fn") {
            if let Some(n) = t.get(j + 1).filter(|x| x.kind == TokKind::Ident) {
                locals.insert(n.text.clone());
            }
            j += 2;
            continue;
        }
        if tok.kind == TokKind::Ident {
            // `name :` with a single colon — a typed binding.
            if is_bindable(tok)
                && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                && !t.get(j + 2).is_some_and(|x| x.is_punct(':'))
                && !(j > 0 && t[j - 1].is_punct(':'))
            {
                locals.insert(tok.text.clone());
            }
        } else if tok.is_punct('|') {
            // Untyped closure parameters (the typed form is covered
            // above). A bit-or rhs overcollects at most one safe name.
            let mut k = j + 1;
            loop {
                while k <= end && (t[k].is_ident("mut") || t[k].is_punct('&')) {
                    k += 1;
                }
                let Some(x) = t.get(k) else { break };
                if !is_bindable(x) {
                    break;
                }
                locals.insert(x.text.clone());
                k += 1;
                if t.get(k).is_some_and(|x| x.is_punct(',')) {
                    k += 1;
                } else {
                    break;
                }
            }
        }
        j += 1;
    }
}

/// Scan one function's tokens (`sig_start..=close`, body at `open`)
/// recording call sites, facts, counters and bound locals into `item`.
fn scan_body(t: &[Token], sig_start: usize, open: usize, close: usize, item: &mut FnItem) {
    collect_locals(t, sig_start, close, &mut item.locals);
    let mut j = open + 1;
    while j < close {
        let tok = &t[j];
        // Attributes inside bodies (`#[cfg(feature = "testing")]`) — skip
        // the bracketed part so `cfg(…)` is not mistaken for a call.
        if tok.is_punct('#') {
            let b = if t.get(j + 1).is_some_and(|x| x.is_punct('!')) {
                j + 2
            } else {
                j + 1
            };
            if t.get(b).is_some_and(|x| x.is_punct('[')) {
                j = skip_matched_in(t, b);
                continue;
            }
        }
        // Indexing: `name[…]` / `)[…]` / `][…]` — counted, not a finding.
        if tok.is_punct('[')
            && j > 0
            && (t[j - 1].kind == TokKind::Ident && !KEYWORDS.contains(&t[j - 1].text.as_str())
                || t[j - 1].is_punct(')')
                || t[j - 1].is_punct(']'))
        {
            item.index_sites += 1;
            j += 1;
            continue;
        }
        // Method call: `. name [::<…>] (`.
        if tok.is_punct('.') {
            if let Some(m) = t.get(j + 1).filter(|x| x.kind == TokKind::Ident) {
                let mut k = j + 2;
                if t.get(k).is_some_and(|x| x.is_punct(':'))
                    && t.get(k + 1).is_some_and(|x| x.is_punct(':'))
                    && t.get(k + 2).is_some_and(|x| x.is_punct('<'))
                {
                    k = skip_angles_in(t, k + 2);
                }
                if t.get(k).is_some_and(|x| x.is_punct('(')) {
                    let name = m.text.clone();
                    if ALLOC_METHODS.contains(&name.as_str()) {
                        item.facts.push(Fact {
                            kind: FactKind::Alloc,
                            what: format!(".{name}(…)"),
                            line: m.line,
                            col: m.col,
                        });
                    }
                    if name == "unwrap" || name == "expect" {
                        item.facts.push(Fact {
                            kind: FactKind::Panic,
                            what: format!(".{name}(…)"),
                            line: m.line,
                            col: m.col,
                        });
                    }
                    let on_self = j > 0 && t[j - 1].is_ident("self");
                    item.calls.push(CallSite {
                        kind: CallKind::Method { on_self },
                        name: name.clone(),
                        segs: vec![name],
                        line: m.line,
                        col: m.col,
                    });
                }
            }
            j += 1;
            continue;
        }
        if tok.kind != TokKind::Ident {
            j += 1;
            continue;
        }
        // Skip idents that are path/method continuations or declarations.
        if j > 0 && (t[j - 1].is_punct(':') || t[j - 1].is_punct('.') || t[j - 1].is_ident("fn")) {
            j += 1;
            continue;
        }
        // Macro invocation `name!`.
        if t.get(j + 1).is_some_and(|x| x.is_punct('!')) {
            let name = tok.text.as_str();
            if PANIC_MACROS.contains(&name) {
                item.facts.push(Fact {
                    kind: FactKind::Panic,
                    what: format!("{name}!(…)"),
                    line: tok.line,
                    col: tok.col,
                });
            } else if name == "format" || name == "vec" {
                item.facts.push(Fact {
                    kind: FactKind::Alloc,
                    what: format!("{name}!(…)"),
                    line: tok.line,
                    col: tok.col,
                });
            } else if name == "assert" || name == "assert_eq" || name == "assert_ne" {
                item.assert_sites += 1;
            }
            item.calls.push(CallSite {
                kind: CallKind::Bare,
                name: format!("{name}!"),
                segs: vec![format!("{name}!")],
                line: tok.line,
                col: tok.col,
            });
            j += 2;
            continue;
        }
        // `use` statements inside bodies are skipped here (so the path is
        // not misread as a call chain); `parse_fn` re-parses them into the
        // file-scoped alias map afterwards.
        if tok.is_ident("use") {
            while j < close && !t[j].is_punct(';') {
                j += 1;
            }
            continue;
        }
        // Path chain: `seg (:: seg)* [::<…>] (`.
        let mut segs = vec![tok.text.clone()];
        let mut k = j + 1;
        loop {
            if t.get(k).is_some_and(|x| x.is_punct(':'))
                && t.get(k + 1).is_some_and(|x| x.is_punct(':'))
            {
                if t.get(k + 2).is_some_and(|x| x.is_punct('<')) {
                    k = skip_angles_in(t, k + 2);
                    break;
                }
                if let Some(seg) = t.get(k + 2).filter(|x| x.kind == TokKind::Ident) {
                    segs.push(seg.text.clone());
                    k += 3;
                    continue;
                }
            }
            break;
        }
        if t.get(k).is_some_and(|x| x.is_punct('(')) {
            if segs.len() == 1 {
                let name = &segs[0];
                let first = name.chars().next().unwrap_or('_');
                if !KEYWORDS.contains(&name.as_str()) && !first.is_ascii_uppercase() {
                    item.calls.push(CallSite {
                        kind: CallKind::Bare,
                        name: name.clone(),
                        segs,
                        line: tok.line,
                        col: tok.col,
                    });
                }
            } else {
                let owner_seg = &segs[segs.len() - 2];
                let last = &segs[segs.len() - 1];
                if ALLOC_TYPES.contains(&owner_seg.as_str()) && ALLOC_CTORS.contains(&last.as_str())
                {
                    item.facts.push(Fact {
                        kind: FactKind::Alloc,
                        what: format!("{owner_seg}::{last}(…)"),
                        line: tok.line,
                        col: tok.col,
                    });
                }
                item.calls.push(CallSite {
                    kind: CallKind::Path,
                    name: last.clone(),
                    segs,
                    line: tok.line,
                    col: tok.col,
                });
            }
        }
        j = k.max(j + 1);
    }
    // Whole-item passes: rule 6 / rule 4 shapes and their correlation.
    let slice = &t[sig_start..=close.min(t.len() - 1)];
    let fa: Vec<usize> = crate::rules::check_float_accum(slice)
        .into_iter()
        .map(|x| x + sig_start)
        .collect();
    let nd: Vec<usize> = crate::rules::check_nondet_iteration(slice)
        .into_iter()
        .map(|x| x + sig_start)
        .collect();
    for &x in &fa {
        item.facts.push(Fact {
            kind: FactKind::FloatAccum,
            what: "manual f32 accumulation".to_string(),
            line: t[x].line,
            col: t[x].col,
        });
    }
    let f32_names = collect_f32_bindings(t, open, close);
    for &x in &nd {
        item.facts.push(Fact {
            kind: FactKind::HashIter,
            what: "HashMap/HashSet iteration".to_string(),
            line: t[x].line,
            col: t[x].col,
        });
        if hash_iter_feeds_float(t, x, close, &fa, &f32_names) {
            item.facts.push(Fact {
                kind: FactKind::TaintedFloatAccum,
                what: "hash iteration feeds f32 accumulation".to_string(),
                line: t[x].line,
                col: t[x].col,
            });
        }
    }
    item.facts.sort_by_key(|f| (f.line, f.col, f.kind));
}

/// `skip_matched` without a `Parser` borrow (body-scan helper).
fn skip_matched_in(t: &[Token], open: usize) -> usize {
    let open_ch = t[open].text.chars().next().unwrap_or('[');
    let close_ch = match open_ch {
        '(' => ')',
        '[' => ']',
        _ => '}',
    };
    let mut depth = 0i32;
    let mut j = open;
    while j < t.len() {
        if t[j].is_punct(open_ch) {
            depth += 1;
        } else if t[j].is_punct(close_ch) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    t.len()
}

/// `skip_angles` without a `Parser` borrow.
fn skip_angles_in(t: &[Token], open: usize) -> usize {
    let mut depth = 0i32;
    let mut j = open;
    while j < t.len() {
        if t[j].is_punct('<') {
            depth += 1;
        } else if t[j].is_punct('>') && !(j > 0 && t[j - 1].is_punct('-')) {
            depth -= 1;
            if depth == 0 {
                return j + 1;
            }
        }
        j += 1;
    }
    t.len()
}

/// Names bound to `f32` in the body (`let [mut] n: f32` or a literal with
/// an `f32` suffix) — targets for compound accumulation (`n += …`).
fn collect_f32_bindings(t: &[Token], open: usize, close: usize) -> Vec<String> {
    let mut names = Vec::new();
    let mut j = open;
    while j + 3 < close {
        if t[j].is_ident("let") {
            let mut k = j + 1;
            if t.get(k).is_some_and(|x| x.is_ident("mut")) {
                k += 1;
            }
            if let Some(name) = t.get(k).filter(|x| x.kind == TokKind::Ident) {
                let is_f32 = (t.get(k + 1).is_some_and(|x| x.is_punct(':'))
                    && t.get(k + 2).is_some_and(|x| x.is_ident("f32")))
                    || (t.get(k + 1).is_some_and(|x| x.is_punct('='))
                        && t.get(k + 2)
                            .is_some_and(|x| x.kind == TokKind::Num && x.text.ends_with("f32")));
                if is_f32 {
                    names.push(name.text.clone());
                }
            }
        }
        j += 1;
    }
    names
}

/// Does the hash-iteration anchored at `x` feed a float accumulation?
/// Same-statement case: a rule-6 anchor inside the statement span.
/// For-loop case: a rule-6 anchor or a compound `name += …` (with `name`
/// bound to `f32`) inside the loop body.
fn hash_iter_feeds_float(
    t: &[Token],
    x: usize,
    close: usize,
    fa: &[usize],
    f32_names: &[String],
) -> bool {
    // Statement span around the anchor.
    let mut s = x;
    while s > 0 {
        let p = &t[s - 1];
        if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
            break;
        }
        s -= 1;
    }
    let e = crate::rules::stmt_end(t, x).min(close);
    if fa.iter().any(|&a| a >= s && a <= e) {
        return true;
    }
    // For-loop case: rule 4 anchors the iterated name, with `{` next.
    if t.get(x + 1).is_some_and(|tok| tok.is_punct('{')) {
        let body_end = skip_matched_in(t, x + 1).min(close + 1);
        if fa.iter().any(|&a| a > x + 1 && a < body_end) {
            return true;
        }
        let mut j = x + 2;
        while j + 2 < body_end {
            if t[j].kind == TokKind::Ident
                && f32_names.iter().any(|n| n == &t[j].text)
                && t[j + 1].is_punct('+')
                && t[j + 2].is_punct('=')
            {
                return true;
            }
            j += 1;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(src: &str) -> FileIr {
        parse_file("crates/core/src/demo.rs", src)
    }

    #[test]
    fn recovers_fn_mod_impl_structure() {
        let ir = parse(
            r"
            pub fn top() {}
            mod inner {
                pub fn nested() {}
            }
            pub struct Thing;
            impl Thing {
                pub fn method(&self) {}
            }
            ",
        );
        let quals: Vec<&str> = ir.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(
            quals,
            [
                "rm_core::demo::top",
                "rm_core::demo::inner::nested",
                "rm_core::demo::Thing::method"
            ]
        );
    }

    #[test]
    fn trait_impl_methods_attribute_to_the_self_type() {
        let ir = parse(
            r"
            impl super::Recommender for Bpr {
                fn score(&self, u: u32, b: u32) -> f32 { self.inner_score(u, b) }
            }
            ",
        );
        assert_eq!(ir.fns.len(), 1);
        assert_eq!(ir.fns[0].qual, "rm_core::demo::Bpr::score");
        assert_eq!(ir.fns[0].owner.as_deref(), Some("Bpr"));
        assert!(!ir.fns[0].owner_is_trait);
        let m = &ir.fns[0].calls[0];
        assert_eq!(m.name, "inner_score");
        assert_eq!(m.kind, CallKind::Method { on_self: true });
    }

    #[test]
    fn trait_default_bodies_flag_owner_is_trait() {
        let ir = parse(
            r"
            pub trait Recommender {
                fn score(&self, u: u32, b: u32) -> f32;
                fn recommend(&self, u: u32, k: usize) -> Vec<u32> {
                    self.rank(u, k)
                }
            }
            ",
        );
        // The body-less declaration is skipped; only the default counts.
        assert_eq!(ir.fns.len(), 1);
        assert_eq!(ir.fns[0].qual, "rm_core::demo::Recommender::recommend");
        assert!(ir.fns[0].owner_is_trait);
    }

    #[test]
    fn use_trees_record_aliases_groups_and_globs() {
        let ir = parse(
            r"
            use std::collections::{HashMap, HashSet as Set};
            use crate::pipeline::{self, merge_into};
            use rm_sparse::vecops::*;
            fn f() {}
            ",
        );
        assert_eq!(ir.uses["HashMap"], ["std", "collections", "HashMap"]);
        assert_eq!(ir.uses["Set"], ["std", "collections", "HashSet"]);
        assert_eq!(ir.uses["merge_into"], ["crate", "pipeline", "merge_into"]);
        assert_eq!(ir.uses["pipeline"], ["crate", "pipeline"]);
        assert_eq!(ir.globs, [vec!["rm_sparse", "vecops"]]);
    }

    #[test]
    fn records_alloc_panic_facts_and_counters() {
        let ir = parse(
            r#"
            fn f(xs: &[u32]) -> Vec<u32> {
                let mut out = Vec::with_capacity(xs.len());
                out.push(xs[0]);
                let s = format!("{}", xs.len());
                assert!(!s.is_empty());
                xs.first().unwrap();
                out
            }
            "#,
        );
        let f = &ir.fns[0];
        let kinds: Vec<(&str, &str)> = f
            .facts
            .iter()
            .map(|x| (x.kind.name(), x.what.as_str()))
            .collect();
        assert!(kinds.contains(&("alloc", "Vec::with_capacity(…)")));
        assert!(kinds.contains(&("alloc", ".push(…)")));
        assert!(kinds.contains(&("alloc", "format!(…)")));
        assert!(kinds.contains(&("panic", ".unwrap(…)")));
        assert_eq!(f.index_sites, 1, "xs[0]");
        assert_eq!(f.assert_sites, 1);
    }

    #[test]
    fn attributes_inside_bodies_are_not_calls() {
        let ir = parse(
            r#"
            fn f() {
                #[cfg(feature = "testing")]
                {
                    helper();
                }
            }
            fn helper() {}
            "#,
        );
        let f = &ir.fns[0];
        assert_eq!(f.calls.len(), 1);
        assert_eq!(f.calls[0].name, "helper");
    }

    #[test]
    fn cfg_test_mod_blocks_mark_fns_as_test() {
        let ir = parse(
            r"
            fn live() {}
            #[cfg(test)]
            mod tests {
                #[test]
                fn t() { super::live(); }
            }
            ",
        );
        assert!(!ir.fns[0].is_test);
        assert!(ir.fns[1].is_test);
        assert_eq!(ir.fns[1].qual, "rm_core::demo::tests::t");
    }

    #[test]
    fn macro_rules_bodies_never_leak_phantom_items() {
        let ir = parse(
            r##"
            macro_rules! gen {
                ($n:ident) => {
                    fn $n() { let _ = r#"raw "quoted" body"#; }
                };
            }
            fn real() {}
            "##,
        );
        assert_eq!(ir.fns.len(), 1);
        assert_eq!(ir.fns[0].name, "real");
    }

    #[test]
    fn tainted_float_accum_same_statement_and_for_loop() {
        let ir = parse(
            r"
            use std::collections::HashMap;
            fn same_stmt(m: &HashMap<u32, f32>) -> f32 {
                let total: f32 = m.values().map(|v| v * v).sum::<f32>();
                total
            }
            fn for_loop(m: &HashMap<u32, f32>) -> f32 {
                let mut acc: f32 = 0.0;
                for (_k, v) in m {
                    acc += v;
                }
                acc
            }
            fn clean(m: &HashMap<u32, f32>) -> Vec<u32> {
                let mut ks: Vec<u32> = m.keys().copied().collect();
                ks.sort_unstable();
                ks
            }
            ",
        );
        let tainted = |f: &FnItem| {
            f.facts
                .iter()
                .any(|x| x.kind == FactKind::TaintedFloatAccum)
        };
        assert!(tainted(&ir.fns[0]), "same-statement sum::<f32>");
        assert!(!tainted(&ir.fns[2]), "sorted drain is clean");
    }

    #[test]
    fn for_loop_compound_accum_is_tainted() {
        let ir = parse(
            r"
            use std::collections::HashMap;
            fn for_loop(m: &HashMap<u32, f32>) -> f32 {
                let mut acc: f32 = 0.0;
                for (_k, v) in m {
                    acc += v;
                }
                acc
            }
            ",
        );
        assert!(ir.fns[0]
            .facts
            .iter()
            .any(|x| x.kind == FactKind::TaintedFloatAccum));
    }

    #[test]
    fn path_calls_keep_segments_and_bins_get_synthetic_crates() {
        let ir = parse_file(
            "crates/bench/src/bin/ann-bench.rs",
            "fn main() { rm_core::quant::decode(1); }",
        );
        assert_eq!(ir.crate_name, "rm_bench_bin_ann_bench");
        let c = &ir.fns[0].calls[0];
        assert_eq!(c.kind, CallKind::Path);
        assert_eq!(c.segs, ["rm_core", "quant", "decode"]);
    }

    #[test]
    fn tests_dir_files_are_all_test() {
        let ir = parse_file("crates/core/tests/golden.rs", "fn helper() {}");
        assert!(ir.fns[0].is_test);
        assert!(ir.fns[0].qual.starts_with("rm_core_tests_golden::"));
    }
}
