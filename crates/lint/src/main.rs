//! `rm-lint` CLI.
//!
//! ```text
//! rm-lint [--root DIR] [--allowlist FILE] [--report FILE] [--list-rules]
//! ```
//!
//! Exit codes: 0 clean; 1 live findings or stale allowlist entries;
//! 2 usage / IO / allowlist-parse error. Diagnostics go to stderr, the
//! summary line to stdout, so `cargo lint 2>&1 | tail -1` shows the verdict.

use rm_lint::allowlist::Allowlist;
use rm_lint::engine::{run, RunConfig};
use rm_lint::report;
use rm_lint::rules::RULES;
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: rm-lint [--root DIR] [--allowlist FILE] [--report FILE] [--list-rules]
  --root DIR        workspace root to scan (default: .)
  --allowlist FILE  structured allowlist (default: <root>/scripts/lint_allowlist.toml if present)
  --report FILE     write LINT_report.json-style report to FILE
  --list-rules      print the rule table and exit";

fn list_rules() {
    println!("{:<28} {:<8} SCOPE / SUMMARY", "RULE", "TESTS");
    for r in RULES {
        println!(
            "{:<28} {:<8} {}",
            r.id,
            if r.test_exempt { "exempt" } else { "checked" },
            r.scope
        );
        println!("{:<28} {:<8} {}", "", "", r.summary);
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                list_rules();
                return Ok(ExitCode::SUCCESS);
            }
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--allowlist" => {
                allowlist_path = Some(PathBuf::from(
                    args.next().ok_or("--allowlist needs a value")?,
                ));
            }
            "--report" => {
                report_path = Some(PathBuf::from(args.next().ok_or("--report needs a value")?));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let allowlist_path = allowlist_path.or_else(|| {
        let default = root.join("scripts/lint_allowlist.toml");
        default.exists().then_some(default)
    });
    let allowlist = match &allowlist_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read allowlist {}: {e}", p.display()))?;
            Some(Allowlist::parse(&text)?)
        }
        None => None,
    };
    let entries = allowlist
        .as_ref()
        .map(|a| a.entries.clone())
        .unwrap_or_default();
    let outcome = run(&RunConfig { root, allowlist })?;

    for f in &outcome.findings {
        eprintln!("{f}\n");
    }
    for &i in &outcome.stale {
        let e = &entries[i];
        eprintln!(
            "error[stale-allowlist-entry]: entry at {}:{} (rule `{}`, path `{}`) matched nothing\n   = help: the code it excused is gone — delete the entry (reason was: {})",
            allowlist_path
                .as_ref()
                .map_or_else(|| "<allowlist>".into(), |p| p.display().to_string()),
            e.src_line,
            e.rule,
            e.path,
            e.reason
        );
    }
    if let Some(p) = &report_path {
        std::fs::write(p, report::render(&outcome, &entries))
            .map_err(|e| format!("cannot write report {}: {e}", p.display()))?;
    }
    println!(
        "rm-lint: {} files scanned, {} findings, {} allowlisted, {} stale allowlist entries",
        outcome.files_scanned,
        outcome.findings.len(),
        outcome.suppressed.len(),
        outcome.stale.len()
    );
    Ok(if outcome.is_clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("rm-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
