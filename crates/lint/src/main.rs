//! `rm-lint` CLI.
//!
//! ```text
//! rm-lint [--root DIR] [--allowlist FILE] [--report FILE]
//!         [--callgraph] [--callgraph-report FILE]
//!         [--list-rules] [--explain RULE]
//! ```
//!
//! By default both analyses run: the token rules (LINT_report.json) and
//! the call-graph reachability rules (CALLGRAPH_report.json); `--callgraph`
//! restricts the run to the latter. Exit codes: 0 clean; 1 live findings,
//! stale allowlist entries, or unmatched roots; 2 usage / IO /
//! allowlist-parse error. Diagnostics go to stderr, summary lines to
//! stdout, so `cargo lint 2>&1 | tail -2` shows the verdict.

use rm_lint::allowlist::Allowlist;
use rm_lint::callgraph::{run_callgraph, CG_RULES};
use rm_lint::engine::{run, RunConfig};
use rm_lint::report;
use rm_lint::rules::{explain, RULES};
use std::path::PathBuf;
use std::process::ExitCode;

const USAGE: &str = "usage: rm-lint [--root DIR] [--allowlist FILE] [--report FILE]
               [--callgraph] [--callgraph-report FILE] [--list-rules] [--explain RULE]
  --root DIR              workspace root to scan (default: .)
  --allowlist FILE        structured allowlist (default: <root>/scripts/lint_allowlist.toml if present)
  --report FILE           write LINT_report.json-style report to FILE
  --callgraph             run only the call-graph reachability analysis
  --callgraph-report FILE write CALLGRAPH_report.json-style report to FILE
  --list-rules            print the rule table (token + call-graph) and exit
  --explain RULE          print a rule's rationale and an example diagnostic";

fn list_rules() {
    println!("{:<40} {:<8} SCOPE / SUMMARY", "RULE", "TESTS");
    for r in RULES {
        println!(
            "{:<40} {:<8} {}",
            r.id,
            if r.test_exempt { "exempt" } else { "checked" },
            r.scope
        );
        println!("{:<40} {:<8} {}", "", "", r.summary);
    }
    for r in CG_RULES {
        println!(
            "{:<40} {:<8} closure of [[root]] entries (cfg(test) excluded)",
            r.id, "exempt"
        );
        println!("{:<40} {:<8} {}", "", "", r.summary);
    }
}

fn real_main() -> Result<ExitCode, String> {
    let mut root = PathBuf::from(".");
    let mut allowlist_path: Option<PathBuf> = None;
    let mut report_path: Option<PathBuf> = None;
    let mut cg_report_path: Option<PathBuf> = None;
    let mut callgraph_only = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--list-rules" => {
                list_rules();
                return Ok(ExitCode::SUCCESS);
            }
            "--explain" => {
                let id = args.next().ok_or("--explain needs a rule id")?;
                let text = explain(&id)
                    .ok_or_else(|| format!("unknown rule `{id}` (see --list-rules)"))?;
                println!("{text}");
                return Ok(ExitCode::SUCCESS);
            }
            "--root" => {
                root = PathBuf::from(args.next().ok_or("--root needs a value")?);
            }
            "--allowlist" => {
                allowlist_path = Some(PathBuf::from(
                    args.next().ok_or("--allowlist needs a value")?,
                ));
            }
            "--report" => {
                report_path = Some(PathBuf::from(args.next().ok_or("--report needs a value")?));
            }
            "--callgraph" => callgraph_only = true,
            "--callgraph-report" => {
                cg_report_path = Some(PathBuf::from(
                    args.next().ok_or("--callgraph-report needs a value")?,
                ));
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(ExitCode::SUCCESS);
            }
            other => return Err(format!("unknown argument `{other}`\n{USAGE}")),
        }
    }
    let allowlist_path = allowlist_path.or_else(|| {
        let default = root.join("scripts/lint_allowlist.toml");
        default.exists().then_some(default)
    });
    let allowlist = match &allowlist_path {
        Some(p) => {
            let text = std::fs::read_to_string(p)
                .map_err(|e| format!("cannot read allowlist {}: {e}", p.display()))?;
            Allowlist::parse(&text)?
        }
        None => Allowlist::default(),
    };
    let allowlist_display = allowlist_path
        .as_ref()
        .map_or_else(|| "<allowlist>".into(), |p| p.display().to_string());
    let mut clean = true;

    // Token rules (skipped under --callgraph).
    if !callgraph_only {
        let entries = allowlist.entries.clone();
        let outcome = run(&RunConfig {
            root: root.clone(),
            allowlist: Some(allowlist.clone()),
        })?;
        for f in &outcome.findings {
            eprintln!("{f}\n");
        }
        for &i in &outcome.stale {
            let e = &entries[i];
            eprintln!(
                "error[stale-allowlist-entry]: entry at {}:{} (rule `{}`, path `{}`) matched nothing\n   = help: the code it excused is gone — delete the entry (reason was: {})",
                allowlist_display, e.src_line, e.rule, e.path, e.reason
            );
        }
        if let Some(p) = &report_path {
            std::fs::write(p, report::render(&outcome, &entries))
                .map_err(|e| format!("cannot write report {}: {e}", p.display()))?;
        }
        println!(
            "rm-lint: {} files scanned, {} findings, {} allowlisted, {} stale allowlist entries",
            outcome.files_scanned,
            outcome.findings.len(),
            outcome.suppressed.len(),
            outcome.stale.len()
        );
        clean &= outcome.is_clean();
    }

    // Call-graph reachability rules.
    let cg = run_callgraph(&root, &allowlist)?;
    for f in &cg.findings {
        eprintln!("{f}\n");
    }
    for e in &cg.stale_approvals {
        eprintln!(
            "error[stale-approve-entry]: entry at {}:{} (rule `{}`, fn `{}`) approved nothing\n   = help: the behaviour it excused is gone — delete the entry (reason was: {})",
            allowlist_display, e.src_line, e.rule, e.func, e.reason
        );
    }
    for e in &cg.unmatched_roots {
        eprintln!(
            "error[unmatched-root]: [[root]] at {}:{} (pattern `{}`) matched no live function\n   = help: the entry point was renamed or removed — update the pattern (reason was: {})",
            allowlist_display, e.src_line, e.pattern, e.reason
        );
    }
    if let Some(p) = &cg_report_path {
        std::fs::write(p, report::render_callgraph(&cg))
            .map_err(|e| format!("cannot write report {}: {e}", p.display()))?;
    }
    println!(
        "rm-lint callgraph: {} functions, {} edges, {} in serve closure, {} findings, {} approved sites, {} unresolved ({} in closure), {} stale approvals, {} unmatched roots",
        cg.functions,
        cg.edges,
        cg.closure_functions,
        cg.findings.len(),
        cg.approved.iter().map(|a| a.sites).sum::<usize>(),
        cg.unresolved_total,
        cg.unresolved_in_closure,
        cg.stale_approvals.len(),
        cg.unmatched_roots.len()
    );
    clean &= cg.is_clean();

    Ok(if clean {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    })
}

fn main() -> ExitCode {
    match real_main() {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("rm-lint: {msg}");
            ExitCode::from(2)
        }
    }
}
