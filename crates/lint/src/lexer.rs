//! A token-level Rust lexer.
//!
//! Rules must not fire on `"zip().map().sum()"` inside a string literal or
//! on commented-out code, and must survive line moves — so the unit of
//! analysis is the token, not the line. The lexer handles exactly the parts
//! of Rust's lexical grammar that matter for that guarantee:
//!
//! * `//` line comments (incl. doc comments) and nested `/* /* */ */`
//!   block comments — dropped;
//! * string literals `"…"` with escapes, raw strings `r"…"` / `r#"…"#`
//!   with arbitrary `#` fences, byte strings `b"…"` / `br#"…"#`;
//! * char and byte-char literals `'a'`, `'\n'`, `b'x'`;
//! * lifetimes: `'a` is a [`TokKind::Lifetime`], `'a'` is a
//!   [`TokKind::Char`] — disambiguated by the closing quote;
//! * raw identifiers `r#type` (a [`TokKind::Ident`] with the fence
//!   stripped);
//! * numbers, including `0.0f32`, `1_000`, `1e-3`, and `0..n` (the `.` of
//!   a range never glues onto the number);
//! * everything else as single-character [`TokKind::Punct`] tokens.
//!
//! The lexer is loss-tolerant: malformed input never panics, it just
//! produces best-effort tokens. That is the right trade-off for a lint
//! that runs on code `rustc` already accepted.

/// What a token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (raw identifiers lose their `r#` fence).
    Ident,
    /// Lifetime such as `'a` (without the quote in [`Token::text`]).
    Lifetime,
    /// Character literal `'a'` / byte-char `b'a'`.
    Char,
    /// String literal of any flavour (plain, raw, byte, raw-byte).
    Str,
    /// Numeric literal (integer or float, with any suffix).
    Num,
    /// A single punctuation character (`.`, `:`, `(`, …).
    Punct,
}

/// One lexed token with its source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// Token class.
    pub kind: TokKind,
    /// The token's text. For [`TokKind::Str`] this is the *content* with
    /// delimiters stripped; rules never need to re-parse quoting.
    pub text: String,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based source column (in characters) of the token's first character.
    pub col: u32,
    /// True when the token sits inside a `#[cfg(test)]` / `#[test]` item
    /// (set by [`mark_test_regions`], not by the lexer itself).
    pub in_test: bool,
}

impl Token {
    /// True for an identifier with exactly this text.
    #[must_use]
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    /// True for a punctuation token with exactly this character.
    #[must_use]
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

struct Cursor<'a> {
    chars: std::iter::Peekable<std::str::Chars<'a>>,
    line: u32,
    col: u32,
}

impl<'a> Cursor<'a> {
    fn new(src: &'a str) -> Self {
        Self {
            chars: src.chars().peekable(),
            line: 1,
            col: 1,
        }
    }

    fn peek(&mut self) -> Option<char> {
        self.chars.peek().copied()
    }

    /// Looks one character past the next one (clones the tail iterator —
    /// fine at lint scale).
    fn peek2(&mut self) -> Option<char> {
        let mut it = self.chars.clone();
        it.next();
        it.next()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.next()?;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Lexes `src` into semantic tokens; comments and whitespace are dropped.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor::new(src);
    let mut out = Vec::new();
    while let Some(c) = cur.peek() {
        let (line, col) = (cur.line, cur.col);
        match c {
            _ if c.is_whitespace() => {
                cur.bump();
            }
            '/' if cur.peek2() == Some('/') => {
                while let Some(c) = cur.peek() {
                    if c == '\n' {
                        break;
                    }
                    cur.bump();
                }
            }
            '/' if cur.peek2() == Some('*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1u32;
                while depth > 0 {
                    match (cur.bump(), cur.peek()) {
                        (Some('/'), Some('*')) => {
                            cur.bump();
                            depth += 1;
                        }
                        (Some('*'), Some('/')) => {
                            cur.bump();
                            depth -= 1;
                        }
                        (None, _) => break,
                        _ => {}
                    }
                }
            }
            '"' => {
                let text = lex_plain_string(&mut cur);
                out.push(tok(TokKind::Str, text, line, col));
            }
            '\'' => {
                let t = lex_quote(&mut cur);
                out.push(Token {
                    line,
                    col,
                    in_test: false,
                    ..t
                });
            }
            'r' | 'b' if starts_literal_prefix(&mut cur) => {
                let t = lex_prefixed(&mut cur);
                out.push(Token {
                    line,
                    col,
                    in_test: false,
                    ..t
                });
            }
            _ if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(c) = cur.peek() {
                    if is_ident_continue(c) {
                        text.push(c);
                        cur.bump();
                    } else {
                        break;
                    }
                }
                out.push(tok(TokKind::Ident, text, line, col));
            }
            _ if c.is_ascii_digit() => {
                let text = lex_number(&mut cur);
                out.push(tok(TokKind::Num, text, line, col));
            }
            _ => {
                cur.bump();
                out.push(tok(TokKind::Punct, c.to_string(), line, col));
            }
        }
    }
    out
}

fn tok(kind: TokKind, text: String, line: u32, col: u32) -> Token {
    Token {
        kind,
        text,
        line,
        col,
        in_test: false,
    }
}

/// Does the `r` / `b` at the cursor start a literal (`r"`, `r#"`, `r#ident`,
/// `b"`, `b'`, `br"`, `br#"`), as opposed to a plain identifier?
fn starts_literal_prefix(cur: &mut Cursor<'_>) -> bool {
    let mut it = cur.chars.clone();
    let first = it.next();
    let mut rest = it.clone();
    match (first, rest.next()) {
        (Some('r'), Some('"' | '#')) => true,
        (Some('b'), Some('"' | '\'')) => true,
        (Some('b'), Some('r')) => matches!(rest.next(), Some('"' | '#')),
        _ => false,
    }
}

/// Lexes `r…` / `b…` prefixed literals and raw identifiers. The cursor sits
/// on the prefix character.
fn lex_prefixed(cur: &mut Cursor<'_>) -> Token {
    let first = cur.bump().unwrap_or('r');
    if first == 'b' {
        match cur.peek() {
            Some('\'') => return lex_quote(cur),
            Some('"') => {
                let text = lex_plain_string(cur);
                return tok(TokKind::Str, text, 0, 0);
            }
            Some('r') => {
                cur.bump();
            }
            _ => return tok(TokKind::Ident, "b".into(), 0, 0),
        }
    }
    // Here: after `r` (or `br`). Count `#` fences.
    let mut fence = 0usize;
    while cur.peek() == Some('#') {
        fence += 1;
        cur.bump();
    }
    if cur.peek() == Some('"') {
        cur.bump();
        let mut text = String::new();
        // Raw string: ends at `"` followed by `fence` hashes.
        'scan: while let Some(c) = cur.bump() {
            if c == '"' {
                let mut it = cur.chars.clone();
                for _ in 0..fence {
                    if it.next() != Some('#') {
                        text.push('"');
                        continue 'scan;
                    }
                }
                for _ in 0..fence {
                    cur.bump();
                }
                break;
            }
            text.push(c);
        }
        return tok(TokKind::Str, text, 0, 0);
    }
    if fence > 0 && cur.peek().is_some_and(is_ident_start) {
        // Raw identifier `r#type`.
        let mut text = String::new();
        while let Some(c) = cur.peek() {
            if is_ident_continue(c) {
                text.push(c);
                cur.bump();
            } else {
                break;
            }
        }
        return tok(TokKind::Ident, text, 0, 0);
    }
    // `r` followed by nothing special: it was just the identifier `r`
    // (unreachable through `starts_literal_prefix`, kept for robustness).
    tok(TokKind::Ident, "r".into(), 0, 0)
}

/// Lexes a `"…"` string; the cursor sits on the opening quote.
fn lex_plain_string(cur: &mut Cursor<'_>) -> String {
    cur.bump();
    let mut text = String::new();
    while let Some(c) = cur.bump() {
        match c {
            '"' => break,
            '\\' => {
                // Keep the escape verbatim; rules only need "not code".
                text.push('\\');
                if let Some(e) = cur.bump() {
                    text.push(e);
                }
            }
            _ => text.push(c),
        }
    }
    text
}

/// Lexes from a `'`: either a lifetime (`'a`) or a char literal (`'a'`,
/// `'\n'`, `'\u{1F600}'`). The cursor sits on the quote.
fn lex_quote(cur: &mut Cursor<'_>) -> Token {
    cur.bump();
    match cur.peek() {
        Some('\\') => {
            // Escaped char literal: consume until the closing quote.
            let mut text = String::new();
            text.push(cur.bump().unwrap_or('\\'));
            if let Some(e) = cur.bump() {
                text.push(e);
            }
            while let Some(c) = cur.bump() {
                if c == '\'' {
                    break;
                }
                text.push(c);
            }
            tok(TokKind::Char, text, 0, 0)
        }
        Some(c) if is_ident_start(c) => {
            // `'a'` is a char, `'a` (no closing quote after the ident) is a
            // lifetime. Consume the ident run, then look for the quote.
            let mut text = String::new();
            while let Some(c) = cur.peek() {
                if is_ident_continue(c) {
                    text.push(c);
                    cur.bump();
                } else {
                    break;
                }
            }
            if cur.peek() == Some('\'') {
                cur.bump();
                tok(TokKind::Char, text, 0, 0)
            } else {
                tok(TokKind::Lifetime, text, 0, 0)
            }
        }
        Some(c) => {
            // Single non-ident char literal like '(' or '1'.
            cur.bump();
            if cur.peek() == Some('\'') {
                cur.bump();
            }
            tok(TokKind::Char, c.to_string(), 0, 0)
        }
        None => tok(TokKind::Punct, "'".into(), 0, 0),
    }
}

/// Lexes a numeric literal; the cursor sits on the first digit.
fn lex_number(cur: &mut Cursor<'_>) -> String {
    let mut text = String::new();
    while let Some(c) = cur.peek() {
        if c.is_ascii_alphanumeric() || c == '_' {
            text.push(c);
            cur.bump();
            // Exponent sign: `1e-3` / `1E+9`, only when a digit follows.
            if (c == 'e' || c == 'E')
                && matches!(cur.peek(), Some('+' | '-'))
                && cur.peek2().is_some_and(|d| d.is_ascii_digit())
                && !text.starts_with("0x")
                && !text.starts_with("0b")
                && !text.starts_with("0o")
            {
                text.push(cur.bump().unwrap_or('+'));
            }
        } else if c == '.' && cur.peek2().is_some_and(|d| d.is_ascii_digit()) && !text.contains('.')
        {
            // `0.5` continues the number; `0..n` and `1.max(2)` do not.
            text.push(c);
            cur.bump();
        } else {
            break;
        }
    }
    text
}

/// Marks every token belonging to a `#[cfg(test)]` / `#[test]` item (the
/// attribute, the item header, and its entire `{ … }` body or `;`-ended
/// signature) with [`Token::in_test`], so rules can exempt test code.
///
/// An attribute is test-like when it is exactly `#[test]`, or a `#[cfg(…)]`
/// whose argument mentions the `test` flag anywhere (`#[cfg(test)]`,
/// `#[cfg(all(test, feature = "x"))]`, …).
pub fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if !(tokens[i].is_punct('#') && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))) {
            i += 1;
            continue;
        }
        let Some((attr_end, test_like)) = scan_attribute(tokens, i) else {
            i += 1;
            continue;
        };
        if !test_like {
            i = attr_end + 1;
            continue;
        }
        // Swallow any further attributes on the same item.
        let mut j = attr_end + 1;
        while j < tokens.len()
            && tokens[j].is_punct('#')
            && tokens.get(j + 1).is_some_and(|t| t.is_punct('['))
        {
            match scan_attribute(tokens, j) {
                Some((end, _)) => j = end + 1,
                None => break,
            }
        }
        // Mark through the item: its `{ … }` body, or `;` at depth 0.
        let end = item_end(tokens, j).min(tokens.len() - 1);
        for t in &mut tokens[i..=end] {
            t.in_test = true;
        }
        i = end.saturating_add(1);
    }
}

/// Scans the `#[ … ]` starting at `start` (pointing at `#`). Returns the
/// index of the closing `]` and whether the attribute is test-like.
fn scan_attribute(tokens: &[Token], start: usize) -> Option<(usize, bool)> {
    let mut depth = 0i32;
    let mut is_cfg = false;
    let mut saw_test = false;
    let mut first_ident: Option<&str> = None;
    let mut j = start + 1;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                let test_like = matches!(first_ident, Some("test"))
                    || (is_cfg && saw_test)
                    || matches!(first_ident, Some("should_panic"));
                return Some((j, test_like));
            }
        } else if t.kind == TokKind::Ident {
            if first_ident.is_none() {
                first_ident = Some(&t.text);
                is_cfg = t.text == "cfg";
            }
            if t.text == "test" {
                saw_test = true;
            }
        }
        j += 1;
    }
    None
}

/// Finds the index of the last token of the item starting at `start`: the
/// matching `}` of its first depth-0 block, or the first `;` at depth 0.
fn item_end(tokens: &[Token], start: usize) -> usize {
    let mut paren = 0i32;
    let mut bracket = 0i32;
    let mut brace = 0i32;
    let mut j = start;
    while j < tokens.len() {
        let t = &tokens[j];
        if t.kind == TokKind::Punct {
            match t.text.as_bytes().first() {
                Some(b'(') => paren += 1,
                Some(b')') => paren -= 1,
                Some(b'[') => bracket += 1,
                Some(b']') => bracket -= 1,
                Some(b'{') => brace += 1,
                Some(b'}') => {
                    brace -= 1;
                    if brace == 0 {
                        return j;
                    }
                }
                Some(b';') if paren == 0 && bracket == 0 && brace == 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    tokens.len().saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<(TokKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn comments_are_dropped_including_nested_blocks() {
        let toks = texts("a // zip().map().sum()\n/* outer /* inner */ still */ b");
        assert_eq!(
            toks,
            vec![(TokKind::Ident, "a".into()), (TokKind::Ident, "b".into())]
        );
    }

    #[test]
    fn string_contents_are_not_code() {
        let toks = lex(r#"let s = "a.zip(b).map(f).sum()";"#);
        assert!(toks.iter().any(|t| t.kind == TokKind::Str));
        // No ident token `zip` escapes the literal.
        assert!(!toks.iter().any(|t| t.is_ident("zip")));
    }

    #[test]
    fn raw_strings_with_fences() {
        let toks = texts(r###"r#"quote " inside"# r##"double ## fence"## x"###);
        assert_eq!(toks[0], (TokKind::Str, "quote \" inside".into()));
        assert_eq!(toks[1], (TokKind::Str, "double ## fence".into()));
        assert_eq!(toks[2], (TokKind::Ident, "x".into()));
    }

    #[test]
    fn byte_strings_and_byte_chars() {
        let toks = texts(r#"b"bytes" b'x' br"raw bytes""#);
        assert_eq!(toks[0], (TokKind::Str, "bytes".into()));
        assert_eq!(toks[1], (TokKind::Char, "x".into()));
        assert_eq!(toks[2], (TokKind::Str, "raw bytes".into()));
    }

    #[test]
    fn lifetime_vs_char_literal() {
        let toks = texts("fn f<'a>(x: &'a str) { let c = 'a'; let n = '\\n'; }");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|(k, _)| *k == TokKind::Lifetime)
            .collect();
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokKind::Char).collect();
        assert_eq!(lifetimes.len(), 2, "{toks:?}");
        assert_eq!(chars.len(), 2, "{toks:?}");
    }

    #[test]
    fn raw_identifiers() {
        let toks = texts("r#type r#match plain");
        assert_eq!(toks[0], (TokKind::Ident, "type".into()));
        assert_eq!(toks[1], (TokKind::Ident, "match".into()));
        assert_eq!(toks[2], (TokKind::Ident, "plain".into()));
    }

    #[test]
    fn numbers_keep_fractions_but_not_ranges() {
        let toks = texts("0.5 0..10 1_000f32 1e-3 1.max(2)");
        assert_eq!(toks[0], (TokKind::Num, "0.5".into()));
        assert_eq!(toks[1], (TokKind::Num, "0".into()));
        assert!(toks[2].1 == "." && toks[3].1 == ".");
        assert_eq!(toks[4], (TokKind::Num, "10".into()));
        assert_eq!(toks[5], (TokKind::Num, "1_000f32".into()));
        assert_eq!(toks[6], (TokKind::Num, "1e-3".into()));
        assert_eq!(toks[7], (TokKind::Num, "1".into()));
        assert_eq!(toks[8].1, ".");
        assert_eq!(toks[9], (TokKind::Ident, "max".into()));
    }

    #[test]
    fn positions_are_one_based_lines_and_cols() {
        let toks = lex("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn cfg_test_mod_is_marked() {
        let src =
            "fn live() {}\n#[cfg(test)]\nmod tests {\n fn t() { x.iter(); }\n}\nfn live2() {}";
        let mut toks = lex(src);
        mark_test_regions(&mut toks);
        let live: Vec<&Token> = toks.iter().filter(|t| !t.in_test).collect();
        assert!(live.iter().any(|t| t.is_ident("live")));
        assert!(live.iter().any(|t| t.is_ident("live2")));
        assert!(!live.iter().any(|t| t.is_ident("iter")));
    }

    #[test]
    fn cfg_all_with_test_is_marked() {
        let src = "#[cfg(all(test, feature = \"x\"))] fn t() { lock(); } fn live() { lock(); }";
        let mut toks = lex(src);
        mark_test_regions(&mut toks);
        let live_locks = toks
            .iter()
            .filter(|t| t.is_ident("lock") && !t.in_test)
            .count();
        assert_eq!(live_locks, 1);
    }

    #[test]
    fn cfg_feature_is_not_marked() {
        let src = "#[cfg(feature = \"testing\")] fn injected() { panic!(); }";
        let mut toks = lex(src);
        mark_test_regions(&mut toks);
        assert!(toks.iter().all(|t| !t.in_test), "feature gate is live code");
    }

    #[test]
    fn semicolon_items_and_stacked_attributes() {
        let src = "#[cfg(test)]\n#[allow(dead_code)]\nuse std::collections::HashMap;\nfn live() {}";
        let mut toks = lex(src);
        mark_test_regions(&mut toks);
        assert!(toks
            .iter()
            .filter(|t| t.is_ident("HashMap"))
            .all(|t| t.in_test));
        assert!(toks.iter().any(|t| t.is_ident("live") && !t.in_test));
    }
}
