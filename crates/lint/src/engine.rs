//! Orchestration: walk the workspace, lex each file, run every in-scope
//! rule, thread findings through the allowlist, and sort the results.

use crate::allowlist::Allowlist;
use crate::diag::Finding;
use crate::lexer::{lex, mark_test_regions};
use crate::rules::RULES;
use std::collections::BTreeSet;
use std::fs;
use std::path::{Path, PathBuf};

/// Configuration for one lint run.
#[derive(Debug, Clone, Default)]
pub struct RunConfig {
    /// Workspace root (the directory containing `crates/`).
    pub root: PathBuf,
    /// Parsed allowlist (empty when none was given).
    pub allowlist: Option<Allowlist>,
}

/// Result of a lint run, pre-sorted for deterministic output.
#[derive(Debug)]
pub struct RunOutcome {
    /// Live findings (not allowlisted). Non-empty ⇒ the run fails.
    pub findings: Vec<Finding>,
    /// Allowlisted findings with the matching entry index.
    pub suppressed: Vec<(Finding, usize)>,
    /// Indices of allowlist entries that matched nothing (stale ⇒ fail).
    pub stale: Vec<usize>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl RunOutcome {
    /// True when the run found nothing live and nothing stale.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty() && self.stale.is_empty()
    }
}

/// Collects every `.rs` file under `root/crates`, sorted, skipping build
/// output and the lint fixtures (which contain deliberate violations).
/// Shared with the call-graph pass so both see the same workspace.
pub(crate) fn collect_files(root: &Path) -> Result<Vec<PathBuf>, String> {
    let mut out = Vec::new();
    let mut stack = vec![root.join("crates")];
    while let Some(dir) = stack.pop() {
        let entries =
            fs::read_dir(&dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
        let mut names: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
        names.sort();
        for p in names {
            let name = p.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if p.is_dir() {
                if name == "target" || name == "fixtures" {
                    continue;
                }
                stack.push(p);
            } else if name.ends_with(".rs") {
                out.push(p);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Workspace-relative, `/`-separated path for scopes and diagnostics.
pub(crate) fn rel_path(root: &Path, p: &Path) -> String {
    let rel = p.strip_prefix(root).unwrap_or(p);
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints one source text as `path` (workspace-relative). Exposed for the
/// fixture golden tests.
#[must_use]
pub fn lint_source(path: &str, src: &str) -> Vec<Finding> {
    let mut tokens = lex(src);
    mark_test_regions(&mut tokens);
    let in_tests_dir = path.contains("/tests/");
    let lines: Vec<&str> = src.lines().collect();
    let mut findings = Vec::new();
    for rule in RULES {
        if !(rule.applies)(path) {
            continue;
        }
        // Dedupe anchors: two patterns of one rule may hit the same token.
        let anchors: BTreeSet<usize> = (rule.check)(&tokens).into_iter().collect();
        for idx in anchors {
            let tok = &tokens[idx];
            if rule.test_exempt && (tok.in_test || in_tests_dir) {
                continue;
            }
            let source_line = lines
                .get(tok.line as usize - 1)
                .map_or_else(String::new, |l| (*l).to_string());
            findings.push(Finding {
                rule: rule.id,
                path: path.to_string(),
                line: tok.line,
                col: tok.col,
                message: rule.message.to_string(),
                fix_hint: rule.fix_hint,
                source_line,
            });
        }
    }
    findings
}

/// Runs the full lint over `cfg.root`.
pub fn run(cfg: &RunConfig) -> Result<RunOutcome, String> {
    let files = collect_files(&cfg.root)?;
    let mut all = Vec::new();
    for p in &files {
        let src = fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        let rel = rel_path(&cfg.root, p);
        all.extend(lint_source(&rel, &src));
    }
    all.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
    let (findings, suppressed, stale) = match &cfg.allowlist {
        Some(al) => {
            let r = al.filter(all);
            (r.kept, r.suppressed, r.stale)
        }
        None => (all, Vec::new(), Vec::new()),
    };
    Ok(RunOutcome {
        findings,
        suppressed,
        stale,
        files_scanned: files.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lint_source_applies_scopes_and_test_exemptions() {
        // panic-in-library fires in serve src…
        let f = lint_source("crates/serve/src/x.rs", "fn f() { panic!(\"boom\"); }");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "panic-in-library");
        assert_eq!((f[0].line, f[0].col), (1, 10));
        assert_eq!(f[0].source_line, "fn f() { panic!(\"boom\"); }");
        // …but not inside cfg(test)…
        let f = lint_source(
            "crates/serve/src/x.rs",
            "#[cfg(test)] mod t { fn f() { panic!(); } }",
        );
        assert!(f.is_empty());
        // …and not at all outside rm-serve.
        let f = lint_source("crates/eval/src/x.rs", "fn f() { panic!(); }");
        assert!(f.is_empty());
    }

    #[test]
    fn tests_dir_exemption_honours_per_rule_flag() {
        // Rule 2 scans integration tests (test_exempt = false)…
        let f = lint_source("crates/serve/tests/chaos.rs", "let t = Instant::now();");
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "instant-now-in-serve");
        // …rule 3 does not even apply there.
        let f = lint_source("crates/serve/tests/chaos.rs", "let g = mu.lock().unwrap();");
        assert!(f.is_empty());
    }

    #[test]
    fn findings_carry_positions_across_lines() {
        let src = "fn f(a: &[f32], b: &[f32]) -> f32 {\n    a.iter()\n        .zip(b)\n        .map(|(x, y)| x * y)\n        .sum()\n}\n";
        let f = lint_source("crates/eval/src/metrics.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "dot-outside-vecops");
        assert_eq!(f[0].line, 3); // anchored at `.zip`
        assert!(f[0].source_line.contains(".zip(b)"));
    }
}
