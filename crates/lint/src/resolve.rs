//! Deterministic name resolution: turn [`crate::ir`] call sites into
//! intra-workspace call-graph edges.
//!
//! The resolver is conservative in the direction that keeps the analysis
//! *fail-closed* for the reachability rules:
//!
//! * **Method calls** resolve to the union of every non-test workspace
//!   method with that name *and a `self` receiver* (correct
//!   over-approximation for trait-object dispatch — `emit_batch`,
//!   `score`, `recommend_batch` all dispatch through `dyn` on the serve
//!   path — without letting `.load(…)` on an atomic union into an
//!   associated `ServingEngine::load`). A `self.…` receiver narrows to
//!   the surrounding `impl` owner's methods first.
//! * **Path calls** expand `use` aliases, `crate` / `self` / `super` /
//!   `Self` prefixes and one level of re-export chasing, then look up
//!   free functions by (crate, module) and associated functions by
//!   (crate, owner). `std` / `core` / `alloc` and the vendored stand-ins
//!   are external; their behaviour is covered by the fact lists in
//!   [`crate::ir`], not by edges.
//! * **Anything left over** lands in the unresolved bucket with its call
//!   site — counted in the report, and a hard failure when the caller is
//!   inside a serve root's closure (DESIGN.md §19).
//!
//! Deliberate skips (not unresolved): uppercase bare / terminal names
//! (tuple-struct and enum-variant constructors), `#[derive]`-generated
//! methods (`default`, `fmt`, `from`, …) and associated functions on
//! types with no same-crate `impl` body.

use crate::ir::{CallKind, Fact, FileIr};
use std::collections::{BTreeMap, BTreeSet};

/// Crates whose internals we never see: edges stop here, facts took over.
const EXTERNAL_CRATES: &[&str] = &["std", "core", "alloc", "rand", "proptest", "criterion"];

/// See [`crate::ir`]: derive-generated method names that legitimately
/// have no workspace body.
const DERIVED_METHODS: &[&str] = &[
    "default",
    "clone",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "fmt",
    "from",
    "into",
    "from_str",
    "try_from",
    "try_into",
];

/// Bare names that resolve into the std prelude.
const PRELUDE_FNS: &[&str] = &["drop"];

/// Primitive type names: lowercase, so the uppercase-owner heuristics
/// miss them, but `f32::from_le_bytes(…)` is as external as `std`.
const PRIMITIVES: &[&str] = &[
    "bool", "char", "str", "f32", "f64", "i8", "i16", "i32", "i64", "i128", "isize", "u8", "u16",
    "u32", "u64", "u128", "usize",
];

/// One function node in the resolved graph.
#[derive(Debug, Clone)]
pub struct GFn {
    /// Fully qualified name (`rm_core::bpr::Bpr::score`).
    pub qual: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// 1-based column of the `fn` keyword.
    pub col: u32,
    /// Test-only (cfg(test) / #[test] / tests dir): excluded from rules.
    pub is_test: bool,
    /// Behaviour facts from the body scan.
    pub facts: Vec<Fact>,
    /// Indexing sites (counted, not findings).
    pub index_sites: u32,
    /// `assert!`-family sites (counted, not findings).
    pub assert_sites: u32,
    /// Sorted, deduplicated callee function ids.
    pub callees: Vec<usize>,
}

/// One call the resolver could not attribute to any workspace function.
#[derive(Debug, Clone)]
pub struct Unresolved {
    /// Caller function id.
    pub caller: usize,
    /// Called name as written.
    pub name: String,
    /// 1-based call-site line.
    pub line: u32,
    /// 1-based call-site column.
    pub col: u32,
}

/// The resolved intra-workspace call graph.
#[derive(Debug, Clone)]
pub struct Graph {
    /// Function nodes, in deterministic (file, declaration) order.
    pub fns: Vec<GFn>,
    /// Unresolved call sites, in caller order.
    pub unresolved: Vec<Unresolved>,
    /// Total directed edges (sum of callee-list lengths).
    pub edge_count: usize,
}

impl Graph {
    /// Index of a function by fully qualified name, if unique-enough: the
    /// first match in deterministic order.
    #[must_use]
    pub fn find(&self, qual: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.qual == qual)
    }
}

/// Resolution outcome for one call site.
enum Res {
    Edges(Vec<usize>),
    External,
    Skip,
    Unresolved,
}

struct Indexes<'a> {
    files: &'a [FileIr],
    /// (crate, owner, method) → fn ids.
    by_owner: BTreeMap<(String, String, String), Vec<usize>>,
    /// method name → fn ids (all owners, non-test).
    by_name: BTreeMap<String, Vec<usize>>,
    /// (crate, "::"-joined module, free fn name) → fn ids.
    free_fns: BTreeMap<(String, String, String), Vec<usize>>,
    /// Known (crate, "::"-joined module) pairs, with all prefixes.
    modules: BTreeSet<(String, String)>,
    /// Workspace crate names (including synthetic bin/test crates).
    crates: BTreeSet<String>,
    /// (crate, "::"-joined module) → file index (for re-export chasing).
    module_files: BTreeMap<(String, String), usize>,
}

fn join(segs: &[String]) -> String {
    segs.join("::")
}

impl<'a> Indexes<'a> {
    fn build(files: &'a [FileIr]) -> (Self, Vec<GFn>, Vec<(usize, usize)>) {
        let mut by_owner: BTreeMap<(String, String, String), Vec<usize>> = BTreeMap::new();
        let mut by_name: BTreeMap<String, Vec<usize>> = BTreeMap::new();
        let mut free_fns: BTreeMap<(String, String, String), Vec<usize>> = BTreeMap::new();
        let mut modules = BTreeSet::new();
        let mut crates = BTreeSet::new();
        let mut module_files = BTreeMap::new();
        let mut gfns = Vec::new();
        // (graph fn id) → (file idx, fn idx) for the resolution pass.
        let mut origins = Vec::new();
        for (fi, file) in files.iter().enumerate() {
            crates.insert(file.crate_name.clone());
            for p in 0..=file.module.len() {
                modules.insert((file.crate_name.clone(), join(&file.module[..p])));
            }
            module_files
                .entry((file.crate_name.clone(), join(&file.module)))
                .or_insert(fi);
            for (gi, f) in file.fns.iter().enumerate() {
                let id = gfns.len();
                gfns.push(GFn {
                    qual: f.qual.clone(),
                    file: file.path.clone(),
                    line: f.line,
                    col: f.col,
                    is_test: f.is_test,
                    facts: f.facts.clone(),
                    index_sites: f.index_sites,
                    assert_sites: f.assert_sites,
                    callees: Vec::new(),
                });
                origins.push((fi, gi));
                if f.is_test {
                    continue;
                }
                for p in 0..=f.module.len() {
                    modules.insert((file.crate_name.clone(), join(&f.module[..p])));
                }
                match &f.owner {
                    Some(owner) => {
                        by_owner
                            .entry((file.crate_name.clone(), owner.clone(), f.name.clone()))
                            .or_default()
                            .push(id);
                        // Only `self`-taking methods can be `.name(…)`
                        // dispatch targets; associated fns with a popular
                        // std method name (`ServingEngine::load` vs the
                        // atomics' `.load(…)`) must not join the union.
                        if f.has_self {
                            by_name.entry(f.name.clone()).or_default().push(id);
                        }
                    }
                    None => {
                        free_fns
                            .entry((file.crate_name.clone(), join(&f.module), f.name.clone()))
                            .or_default()
                            .push(id);
                    }
                }
            }
        }
        (
            Self {
                files,
                by_owner,
                by_name,
                free_fns,
                modules,
                crates,
                module_files,
            },
            gfns,
            origins,
        )
    }

    fn owner_known(&self, krate: &str, owner: &str) -> bool {
        let lo = (krate.to_string(), owner.to_string(), String::new());
        self.by_owner
            .range(lo..)
            .next()
            .is_some_and(|((c, o, _), _)| c == krate && o == owner)
    }

    /// Expand a path's leading segment against a file's alias map and the
    /// `crate` / `self` / `super` keywords. Returns the owning crate and
    /// crate-relative segments, `None` for external, or an error-ish
    /// `Unknown` for the unresolved bucket.
    fn expand(&self, file: &FileIr, segs: &[String], depth: u32) -> Expanded {
        if depth > 8 || segs.is_empty() {
            return Expanded::Unknown;
        }
        let s0 = segs[0].as_str();
        if s0 == "crate" {
            return Expanded::In(file.crate_name.clone(), segs[1..].to_vec());
        }
        if s0 == "self" {
            let mut m = file.module.clone();
            m.extend_from_slice(&segs[1..]);
            return Expanded::In(file.crate_name.clone(), m);
        }
        if s0 == "super" {
            let mut m = file.module.clone();
            let mut k = 0;
            while segs.get(k).is_some_and(|s| s == "super") {
                m.pop();
                k += 1;
            }
            m.extend_from_slice(&segs[k..]);
            return Expanded::In(file.crate_name.clone(), m);
        }
        if let Some(alias) = file.uses.get(s0) {
            let mut full = alias.clone();
            full.extend_from_slice(&segs[1..]);
            // Re-expand: the alias target may itself start with
            // `crate` / `super` or another alias (rare, depth-capped).
            if full.first().map(String::as_str) == Some(s0) && full.len() == segs.len() {
                return Expanded::Unknown; // self-alias, avoid looping
            }
            return self.expand(file, &full, depth + 1);
        }
        if EXTERNAL_CRATES.contains(&s0) || PRIMITIVES.contains(&s0) {
            return Expanded::External;
        }
        if self.crates.contains(s0) {
            return Expanded::In(s0.to_string(), segs[1..].to_vec());
        }
        // Relative child module of the file's own module…
        let mut child = file.module.clone();
        child.push(s0.to_string());
        if self
            .modules
            .contains(&(file.crate_name.clone(), join(&child)))
        {
            let mut m = file.module.clone();
            m.extend_from_slice(segs);
            return Expanded::In(file.crate_name.clone(), m);
        }
        // …or a crate-root module / type owner in the same crate.
        if self
            .modules
            .contains(&(file.crate_name.clone(), s0.to_string()))
            || self.owner_known(&file.crate_name, s0)
        {
            return Expanded::In(file.crate_name.clone(), segs.to_vec());
        }
        Expanded::Unknown
    }

    /// Resolve crate-relative segments to function ids.
    fn resolve_target(&self, krate: &str, segs: &[String], depth: u32) -> Res {
        if depth > 8 {
            return Res::Unresolved;
        }
        let Some(name) = segs.last() else {
            return Res::Unresolved;
        };
        let prefix = &segs[..segs.len() - 1];
        if let Some(ids) = self
            .free_fns
            .get(&(krate.to_string(), join(prefix), name.clone()))
        {
            return Res::Edges(ids.clone());
        }
        if let Some(owner) = prefix.last() {
            if let Some(ids) = self
                .by_owner
                .get(&(krate.to_string(), owner.clone(), name.clone()))
            {
                return Res::Edges(ids.clone());
            }
        }
        // One level of re-export chasing through the module's own file
        // (`pub use inner::helper;` at a crate or module root).
        if let Some(&fi) = self.module_files.get(&(krate.to_string(), join(prefix))) {
            let mod_file = &self.files[fi];
            if let Some(alias) = mod_file.uses.get(name) {
                match self.expand(mod_file, alias, depth + 1) {
                    Expanded::In(c2, s2) => return self.resolve_target(&c2, &s2, depth + 1),
                    Expanded::External => return Res::External,
                    Expanded::Unknown => {}
                }
            }
            for g in &mod_file.globs {
                if let Expanded::In(c2, p2) = self.expand(mod_file, g, depth + 1) {
                    if let Some(ids) = self.free_fns.get(&(c2.clone(), join(&p2), name.clone())) {
                        return Res::Edges(ids.clone());
                    }
                }
            }
        }
        // Facade re-exports: `pub use rm_dataset as dataset;` in a crate
        // root makes `reading_machine::dataset::io::load_corpus` a valid
        // path whose middle segments are no real module. Expand the first
        // segment past the deepest *existing* module prefix through that
        // module file's aliases, then retry.
        for plen in (0..prefix.len()).rev() {
            let Some(&fi) = self
                .module_files
                .get(&(krate.to_string(), join(&prefix[..plen])))
            else {
                continue;
            };
            let mod_file = &self.files[fi];
            if let Some(alias) = mod_file.uses.get(&segs[plen]) {
                let mut full = alias.clone();
                full.extend_from_slice(&segs[plen + 1..]);
                match self.expand(mod_file, &full, depth + 1) {
                    Expanded::In(c2, s2) => return self.resolve_target(&c2, &s2, depth + 1),
                    Expanded::External => return Res::External,
                    Expanded::Unknown => {}
                }
            }
            break;
        }
        let first = name.chars().next().unwrap_or('_');
        if first.is_ascii_uppercase() {
            // Tuple-struct / enum-variant constructor.
            return Res::Skip;
        }
        if DERIVED_METHODS.contains(&name.as_str()) {
            return Res::Skip;
        }
        if prefix
            .last()
            .and_then(|o| o.chars().next())
            .is_some_and(|c| c.is_ascii_uppercase())
        {
            // Associated fn on a type with no same-crate impl body:
            // std / derive territory (e.g. `Duration::from_nanos`).
            return Res::External;
        }
        Res::Unresolved
    }
}

enum Expanded {
    /// Workspace crate + crate-relative segments.
    In(String, Vec<String>),
    External,
    Unknown,
}

/// Build the resolved call graph for a parsed workspace.
#[must_use]
pub fn build(files: &[FileIr]) -> Graph {
    let (idx, mut gfns, origins) = Indexes::build(files);
    let mut unresolved = Vec::new();
    for id in 0..gfns.len() {
        let (fi, gi) = origins[id];
        let file = &files[fi];
        let f = &file.fns[gi];
        let mut callees: BTreeSet<usize> = BTreeSet::new();
        for call in &f.calls {
            if call.name.ends_with('!') {
                continue; // macro invocation: facts cover it
            }
            let res = match &call.kind {
                CallKind::Method { on_self } => {
                    let owner_hit = if *on_self && !f.owner_is_trait {
                        f.owner.as_ref().and_then(|o| {
                            idx.by_owner
                                .get(&(file.crate_name.clone(), o.clone(), call.name.clone()))
                                .cloned()
                        })
                    } else {
                        None
                    };
                    match owner_hit {
                        Some(ids) => Res::Edges(ids),
                        None => match idx.by_name.get(&call.name) {
                            Some(ids) => Res::Edges(ids.clone()),
                            None => Res::External,
                        },
                    }
                }
                CallKind::Path => {
                    if call.segs[0] == "Self" {
                        match &f.owner {
                            Some(owner) => {
                                let mut segs = vec![owner.clone()];
                                segs.extend_from_slice(&call.segs[1..]);
                                idx.resolve_target(&file.crate_name, &segs, 0)
                            }
                            None => Res::Skip,
                        }
                    } else {
                        match idx.expand(file, &call.segs, 0) {
                            Expanded::In(c, s) => idx.resolve_target(&c, &s, 0),
                            Expanded::External => Res::External,
                            Expanded::Unknown => {
                                let first = call.name.chars().next().unwrap_or('_');
                                let seg0_upper = call.segs[0]
                                    .chars()
                                    .next()
                                    .is_some_and(|c| c.is_ascii_uppercase());
                                if first.is_ascii_uppercase()
                                    || DERIVED_METHODS.contains(&call.name.as_str())
                                {
                                    Res::Skip
                                } else if seg0_upper {
                                    // Assoc fn on a type the workspace
                                    // never impls: std / derive territory.
                                    Res::External
                                } else {
                                    Res::Unresolved
                                }
                            }
                        }
                    }
                }
                CallKind::Bare => {
                    let mut res = Res::Unresolved;
                    let key = (file.crate_name.clone(), join(&f.module), call.name.clone());
                    if let Some(ids) = idx.free_fns.get(&key) {
                        res = Res::Edges(ids.clone());
                    } else if let Some(alias) = file.uses.get(&call.name) {
                        res = match idx.expand(file, alias, 0) {
                            Expanded::In(c, s) => idx.resolve_target(&c, &s, 0),
                            Expanded::External => Res::External,
                            Expanded::Unknown => Res::Unresolved,
                        };
                    } else {
                        for g in &file.globs {
                            if let Expanded::In(c, p) = idx.expand(file, g, 0) {
                                if let Some(ids) =
                                    idx.free_fns.get(&(c, join(&p), call.name.clone()))
                                {
                                    res = Res::Edges(ids.clone());
                                    break;
                                }
                            }
                        }
                        if matches!(res, Res::Unresolved)
                            && PRELUDE_FNS.contains(&call.name.as_str())
                        {
                            res = Res::External;
                        }
                    }
                    // A bare call to a name bound in this body (parameter,
                    // closure, nested fn) invokes a local callable value:
                    // its body — when defined here — was already scanned
                    // as part of this item, so there is no edge to add.
                    if matches!(res, Res::Unresolved) && f.locals.contains(&call.name) {
                        res = Res::Skip;
                    }
                    res
                }
            };
            match res {
                Res::Edges(ids) => callees.extend(ids),
                Res::External | Res::Skip => {}
                Res::Unresolved => unresolved.push(Unresolved {
                    caller: id,
                    name: call.name.clone(),
                    line: call.line,
                    col: call.col,
                }),
            }
        }
        callees.remove(&id); // self-recursion adds nothing to reachability
        gfns[id].callees = callees.into_iter().collect();
    }
    let edge_count = gfns.iter().map(|f| f.callees.len()).sum();
    Graph {
        fns: gfns,
        unresolved,
        edge_count,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_file;

    fn graph(sources: &[(&str, &str)]) -> Graph {
        let files: Vec<FileIr> = sources.iter().map(|(p, s)| parse_file(p, s)).collect();
        build(&files)
    }

    #[test]
    fn bare_calls_resolve_within_module_and_via_use() {
        let g = graph(&[
            (
                "crates/core/src/lib.rs",
                "pub fn entry() { helper(); }\npub fn helper() {}",
            ),
            (
                "crates/serve/src/lib.rs",
                "use rm_core::entry;\npub fn serve() { entry(); }",
            ),
        ]);
        let entry = g.find("rm_core::entry").unwrap();
        let helper = g.find("rm_core::helper").unwrap();
        let serve = g.find("rm_serve::serve").unwrap();
        assert_eq!(g.fns[entry].callees, [helper]);
        assert_eq!(g.fns[serve].callees, [entry]);
        assert!(g.unresolved.is_empty());
    }

    #[test]
    fn method_calls_union_all_workspace_methods() {
        let g = graph(&[(
            "crates/core/src/lib.rs",
            r"
            pub struct A;
            pub struct B;
            impl A { pub fn score(&self) -> f32 { 0.0 } }
            impl B { pub fn score(&self) -> f32 { 1.0 } }
            pub fn rank(x: &A) -> f32 { x.score() }
            ",
        )]);
        let rank = g.find("rm_core::rank").unwrap();
        let a = g.find("rm_core::A::score").unwrap();
        let b = g.find("rm_core::B::score").unwrap();
        assert_eq!(g.fns[rank].callees, [a, b], "dyn-safe over-approximation");
    }

    #[test]
    fn on_self_narrows_to_the_impl_owner() {
        let g = graph(&[(
            "crates/core/src/lib.rs",
            r"
            pub struct A;
            pub struct B;
            impl A {
                pub fn outer(&self) { self.score(); }
                pub fn score(&self) {}
            }
            impl B { pub fn score(&self) {} }
            ",
        )]);
        let outer = g.find("rm_core::A::outer").unwrap();
        let a = g.find("rm_core::A::score").unwrap();
        assert_eq!(g.fns[outer].callees, [a]);
    }

    #[test]
    fn unknown_bare_call_lands_in_unresolved_but_locals_do_not() {
        let g = graph(&[(
            "crates/serve/src/lib.rs",
            "pub fn serve(f: impl Fn(u32)) { mystery(3); f(4); let g = |x: u32| x; g(5); }",
        )]);
        let names: Vec<&str> = g.unresolved.iter().map(|u| u.name.as_str()).collect();
        assert_eq!(
            names,
            ["mystery"],
            "fail closed on unknown names; calls through bound locals are skips"
        );
    }

    #[test]
    fn nested_fn_and_const_generic_items_resolve() {
        let g = graph(&[(
            "crates/sparse/src/vecops.rs",
            r"
            pub fn dot_block<const N: usize>(a: &[f32], bs: [&[f32]; N]) -> [f32; N] {
                [0.0; N]
            }
            pub fn dot(a: &[f32], b: &[f32]) -> f32 {
                fn tail(x: &[f32]) -> f32 { x.iter().sum() }
                let [s] = dot_block(a, [b]);
                s + tail(a)
            }
            ",
        )]);
        let dot = g.find("rm_sparse::vecops::dot").unwrap();
        let block = g.find("rm_sparse::vecops::dot_block").unwrap();
        assert_eq!(
            g.fns[dot].callees,
            [block],
            "array-type `;` must not end the item"
        );
        assert!(g.unresolved.is_empty(), "nested `tail` is a scanned local");
    }

    #[test]
    fn primitive_assoc_fns_and_facade_reexports_resolve() {
        let g = graph(&[
            (
                "crates/reading-machine/src/lib.rs",
                "pub use rm_dataset as dataset;",
            ),
            ("crates/dataset/src/io.rs", "pub fn load_corpus() {}"),
            (
                "crates/reading-machine/src/bin/reading-machine.rs",
                r"
                use reading_machine::dataset::io::load_corpus;
                fn main() {
                    load_corpus();
                    let _x = f32::from_le_bytes([0, 0, 0, 0]);
                }
                ",
            ),
        ]);
        let main = g.find("reading_machine_bin_reading_machine::main").unwrap();
        let lc = g.find("rm_dataset::io::load_corpus").unwrap();
        assert_eq!(g.fns[main].callees, [lc]);
        assert!(g.unresolved.is_empty());
    }

    #[test]
    fn std_paths_and_derives_are_external_not_unresolved() {
        let g = graph(&[(
            "crates/core/src/lib.rs",
            r"
            use std::collections::HashMap;
            #[derive(Default)]
            pub struct Cfg;
            pub fn f() {
                let _m: HashMap<u32, u32> = HashMap::new();
                let _c = Cfg::default();
                let _d = std::time::Duration::from_nanos(1);
            }
            ",
        )]);
        assert!(g.unresolved.is_empty());
    }

    #[test]
    fn reexport_chasing_one_level() {
        let g = graph(&[
            (
                "crates/util/src/lib.rs",
                "pub mod topk;\npub use topk::top_k_of;",
            ),
            ("crates/util/src/topk.rs", "pub fn top_k_of() {}"),
            (
                "crates/serve/src/lib.rs",
                "pub fn serve() { rm_util::top_k_of(); }",
            ),
        ]);
        let serve = g.find("rm_serve::serve").unwrap();
        let tk = g.find("rm_util::topk::top_k_of").unwrap();
        assert_eq!(g.fns[serve].callees, [tk]);
        assert!(g.unresolved.is_empty());
    }

    #[test]
    fn test_functions_are_never_resolution_targets() {
        let g = graph(&[(
            "crates/core/src/lib.rs",
            r"
            pub fn live() { helper(); }
            pub fn helper() {}
            #[cfg(test)]
            mod tests {
                pub fn helper() {}
                #[test]
                fn t() { super::live(); }
            }
            ",
        )]);
        let live = g.find("rm_core::live").unwrap();
        let helper = g.find("rm_core::helper").unwrap();
        assert_eq!(g.fns[live].callees, [helper], "not the test helper");
    }
}
