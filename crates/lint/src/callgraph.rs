//! Reachability engine: the transitive closure of the serve request path
//! over the resolved call graph, and the rules that patrol it.
//!
//! Roots are declared in `scripts/lint_allowlist.toml` as `[[root]]`
//! entries (see [`crate::allowlist::RootEntry`]); the closure is computed
//! by a deterministic multi-source BFS whose parent pointers give every
//! finding a shortest root→sink call chain — the diagnostic shows *how*
//! the serve path reaches the offending function, e.g.
//!
//! ```text
//! serve_chunk_with → rank_stage → helper (crates/core/…): .unwrap()
//! ```
//!
//! Four rules:
//!
//! * `alloc-reachable-from-serve-path` — an allocation fact in a function
//!   reachable from a request root, outside `[[approve]]`d scratch/setup.
//! * `panic-reachable-from-serve-path` — `unwrap` / `expect` /
//!   `panic!`-family reachable from a request root. Supersedes the
//!   scope-based `panic-in-library` rule on the serve side: that rule only
//!   sees `crates/serve/src`, this one follows calls into any crate.
//! * `tainted-float-accum` — hash iteration feeding a float accumulation
//!   in the same body (workspace-wide, not just the closure: determinism
//!   taint corrupts Table 1 wherever it happens).
//! * `unresolved-call-in-serve-closure` — the fail-closed backstop: a
//!   call the resolver could not attribute, inside the closure. The
//!   analysis refuses to vouch for a serve path it cannot see through.
//!
//! Indexing and `assert!`-family sites are deliberate, loud contract
//! checks in this codebase; they are counted in the report (so drift is
//! visible) but not raised as findings. See DESIGN.md §19.

use crate::allowlist::{Allowlist, ApproveEntry, RootEntry};
use crate::ir::FactKind;
use crate::resolve::Graph;
use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::path::Path;

/// Rule id: allocation reachable from a request root.
pub const RULE_ALLOC: &str = "alloc-reachable-from-serve-path";
/// Rule id: may-panic reachable from a request root.
pub const RULE_PANIC: &str = "panic-reachable-from-serve-path";
/// Rule id: hash iteration feeding a float accumulation.
pub const RULE_TAINT: &str = "tainted-float-accum";
/// Rule id: unresolved call inside the serve closure (fail closed).
pub const RULE_UNRESOLVED: &str = "unresolved-call-in-serve-closure";

/// Metadata for one call-graph rule (mirrors [`crate::rules::Rule`] for
/// the `--explain` / `--list-rules` surfaces).
#[derive(Debug)]
pub struct CgRule {
    /// Stable kebab-case id.
    pub id: &'static str,
    /// One-line summary for `--list-rules`.
    pub summary: &'static str,
    /// Finding message.
    pub message: &'static str,
    /// Actionable fix suggestion.
    pub fix_hint: &'static str,
}

/// The call-graph rule table, in severity order.
pub static CG_RULES: &[CgRule] = &[
    CgRule {
        id: RULE_PANIC,
        summary: "no unwrap/expect/panic! reachable from a serve root",
        message: "may-panic operation reachable from a request root",
        fix_hint: "degrade gracefully (return a default / skip the user) or approve the \
                   function with a reason in scripts/lint_allowlist.toml [[approve]]",
    },
    CgRule {
        id: RULE_ALLOC,
        summary: "no allocation reachable from a serve root outside approved scratch",
        message: "allocation reachable from a request root",
        fix_hint: "reuse a preallocated buffer, hoist the allocation into setup, or approve \
                   the function as bounded scratch in scripts/lint_allowlist.toml [[approve]]",
    },
    CgRule {
        id: RULE_TAINT,
        summary: "no HashMap/HashSet iteration feeding an f32 accumulation",
        message: "hash-order iteration feeds a float accumulation in the same body",
        fix_hint: "drain into a Vec, sort by a total order, then accumulate — float addition \
                   is not associative, so hash order changes the result bits",
    },
    CgRule {
        id: RULE_UNRESOLVED,
        summary: "every call inside a serve root's closure must resolve (fail closed)",
        message: "call inside the serve closure that name resolution cannot attribute",
        fix_hint: "call the target through a resolvable name (free fn or method), or approve \
                   the site's function with a reason explaining what actually runs there",
    },
];

/// Look up a call-graph rule by id.
#[must_use]
pub fn cg_rule_by_id(id: &str) -> Option<&'static CgRule> {
    CG_RULES.iter().find(|r| r.id == id)
}

/// One call-graph finding: a behaviour fact (or unresolved call) plus the
/// shortest root→sink chain that proves reachability.
#[derive(Debug, Clone)]
pub struct CgFinding {
    /// Rule id.
    pub rule: &'static str,
    /// Fully qualified function the finding is in.
    pub qual: String,
    /// Workspace-relative file path.
    pub file: String,
    /// 1-based line of the fact / call site.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Short label of the behaviour (`".unwrap(…)"`, `"format!(…)"`).
    pub what: String,
    /// Root→sink call chain (quals); empty for non-reachability findings.
    pub chain: Vec<String>,
}

impl CgFinding {
    /// Deterministic ordering key.
    #[must_use]
    pub fn sort_key(&self) -> (&str, u32, u32, &str, &str) {
        (&self.file, self.line, self.col, self.rule, &self.what)
    }
}

impl fmt::Display for CgFinding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let rule = cg_rule_by_id(self.rule).expect("finding rule in table");
        writeln!(f, "error[{}]: {}: {}", self.rule, rule.message, self.what)?;
        writeln!(
            f,
            "  --> {}:{}:{} ({})",
            self.file, self.line, self.col, self.qual
        )?;
        if !self.chain.is_empty() {
            writeln!(f, "  via: {}", self.chain.join(" → "))?;
        }
        write!(f, "  help: {}", rule.fix_hint)
    }
}

/// One `[[approve]]` entry's tally in the outcome.
#[derive(Debug, Clone)]
pub struct CgApproved {
    /// Rule id.
    pub rule: String,
    /// The entry's function pattern.
    pub func: String,
    /// Number of findings the entry absorbed.
    pub sites: usize,
    /// The entry's reason, echoed into the report.
    pub reason: String,
}

/// Result of a call-graph analysis run.
#[derive(Debug)]
pub struct CgOutcome {
    /// Live findings (not approved). Non-empty ⇒ the run fails.
    pub findings: Vec<CgFinding>,
    /// Per-`[[approve]]`-entry tallies (entries that absorbed ≥ 1).
    pub approved: Vec<CgApproved>,
    /// `[[approve]]` entries that matched nothing (stale ⇒ fail).
    pub stale_approvals: Vec<ApproveEntry>,
    /// `[[root]]` entries that matched no live function (⇒ fail).
    pub unmatched_roots: Vec<RootEntry>,
    /// (pattern, matched quals) per root entry, in file order.
    pub roots: Vec<(String, Vec<String>)>,
    /// Total functions in the graph.
    pub functions: usize,
    /// Total directed edges.
    pub edges: usize,
    /// Number of `.rs` files parsed.
    pub files_scanned: usize,
    /// Functions in the serve closure (roots included).
    pub closure_functions: usize,
    /// Indexing sites inside the closure (counted, not findings).
    pub closure_index_sites: u64,
    /// `assert!`-family sites inside the closure (counted, not findings).
    pub closure_assert_sites: u64,
    /// Unresolved call sites across all non-test functions.
    pub unresolved_total: usize,
    /// Unresolved call sites inside the closure (these are findings).
    pub unresolved_in_closure: usize,
}

impl CgOutcome {
    /// True when nothing is live, stale, or unmatched.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
            && self.stale_approvals.is_empty()
            && self.unmatched_roots.is_empty()
    }
}

/// Does `pattern` (optional trailing `*`) match `qual`? A pattern without
/// `::` matches the bare function name (last segment) instead.
fn pattern_matches(pattern: &str, qual: &str) -> bool {
    let target = if pattern.contains("::") {
        qual
    } else {
        qual.rsplit("::").next().unwrap_or(qual)
    };
    match pattern.strip_suffix('*') {
        Some(prefix) => target.starts_with(prefix),
        None => target == pattern,
    }
}

/// Compute the serve closure: BFS from every root-matched function, with
/// parent pointers for shortest root→sink chains. Returns
/// (parent-or-self per reachable id) keyed by function id.
fn closure_with_parents(graph: &Graph, root_ids: &[usize]) -> BTreeMap<usize, usize> {
    let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for &r in root_ids {
        if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(r) {
            e.insert(r);
            queue.push_back(r);
        }
    }
    while let Some(u) = queue.pop_front() {
        for &v in &graph.fns[u].callees {
            if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(v) {
                e.insert(u);
                queue.push_back(v);
            }
        }
    }
    parent
}

/// Reconstruct the root→`id` chain of fully qualified names.
fn chain_to(graph: &Graph, parent: &BTreeMap<usize, usize>, id: usize) -> Vec<String> {
    let mut rev = vec![id];
    let mut cur = id;
    while let Some(&p) = parent.get(&cur) {
        if p == cur {
            break;
        }
        rev.push(p);
        cur = p;
    }
    rev.reverse();
    rev.into_iter().map(|i| graph.fns[i].qual.clone()).collect()
}

/// Run the call-graph analysis over a resolved graph.
#[must_use]
pub fn analyze(graph: &Graph, allowlist: &Allowlist, files_scanned: usize) -> CgOutcome {
    // Roots: every [[root]] pattern against every non-test function.
    let mut roots = Vec::new();
    let mut unmatched_roots = Vec::new();
    let mut root_ids: Vec<usize> = Vec::new();
    for entry in &allowlist.roots {
        let matched: Vec<usize> = (0..graph.fns.len())
            .filter(|&i| {
                !graph.fns[i].is_test && pattern_matches(&entry.pattern, &graph.fns[i].qual)
            })
            .collect();
        if matched.is_empty() {
            unmatched_roots.push(entry.clone());
        }
        roots.push((
            entry.pattern.clone(),
            matched.iter().map(|&i| graph.fns[i].qual.clone()).collect(),
        ));
        root_ids.extend(&matched);
    }
    root_ids.sort_unstable();
    root_ids.dedup();
    let parent = closure_with_parents(graph, &root_ids);

    // Raw findings, before approvals.
    let mut raw: Vec<CgFinding> = Vec::new();
    let mut closure_index_sites = 0u64;
    let mut closure_assert_sites = 0u64;
    for (id, f) in graph.fns.iter().enumerate() {
        if f.is_test {
            continue;
        }
        let in_closure = parent.contains_key(&id);
        if in_closure {
            closure_index_sites += u64::from(f.index_sites);
            closure_assert_sites += u64::from(f.assert_sites);
        }
        for fact in &f.facts {
            let rule = match fact.kind {
                FactKind::Alloc if in_closure => RULE_ALLOC,
                FactKind::Panic if in_closure => RULE_PANIC,
                FactKind::TaintedFloatAccum => RULE_TAINT,
                _ => continue,
            };
            raw.push(CgFinding {
                rule,
                qual: f.qual.clone(),
                file: f.file.clone(),
                line: fact.line,
                col: fact.col,
                what: fact.what.clone(),
                chain: if in_closure {
                    chain_to(graph, &parent, id)
                } else {
                    Vec::new()
                },
            });
        }
    }
    let mut unresolved_total = 0;
    let mut unresolved_in_closure = 0;
    for u in &graph.unresolved {
        if graph.fns[u.caller].is_test {
            continue;
        }
        unresolved_total += 1;
        if parent.contains_key(&u.caller) {
            unresolved_in_closure += 1;
            raw.push(CgFinding {
                rule: RULE_UNRESOLVED,
                qual: graph.fns[u.caller].qual.clone(),
                file: graph.fns[u.caller].file.clone(),
                line: u.line,
                col: u.col,
                what: format!("cannot resolve `{}(…)`", u.name),
                chain: chain_to(graph, &parent, u.caller),
            });
        }
    }
    raw.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));

    // Approvals: first matching [[approve]] entry wins, stale ⇒ fail.
    let mut used = vec![0usize; allowlist.approves.len()];
    let mut findings = Vec::new();
    for f in raw {
        let hit = allowlist
            .approves
            .iter()
            .position(|e| e.rule == f.rule && pattern_matches(&e.func, &f.qual));
        match hit {
            Some(i) => used[i] += 1,
            None => findings.push(f),
        }
    }
    let mut approved = Vec::new();
    let mut stale_approvals = Vec::new();
    for (i, e) in allowlist.approves.iter().enumerate() {
        if used[i] == 0 {
            stale_approvals.push(e.clone());
        } else {
            approved.push(CgApproved {
                rule: e.rule.clone(),
                func: e.func.clone(),
                sites: used[i],
                reason: e.reason.clone(),
            });
        }
    }

    CgOutcome {
        findings,
        approved,
        stale_approvals,
        unmatched_roots,
        roots,
        functions: graph.fns.len(),
        edges: graph.edge_count,
        files_scanned,
        closure_functions: parent.len(),
        closure_index_sites,
        closure_assert_sites,
        unresolved_total,
        unresolved_in_closure,
    }
}

/// Parse the workspace under `root`, resolve the call graph, and run the
/// reachability rules against `allowlist`.
pub fn run_callgraph(root: &Path, allowlist: &Allowlist) -> Result<CgOutcome, String> {
    let files = crate::engine::collect_files(root)?;
    let mut irs = Vec::with_capacity(files.len());
    for p in &files {
        let src =
            std::fs::read_to_string(p).map_err(|e| format!("cannot read {}: {e}", p.display()))?;
        let rel = crate::engine::rel_path(root, p);
        irs.push(crate::ir::parse_file(&rel, &src));
    }
    let graph = crate::resolve::build(&irs);
    Ok(analyze(&graph, allowlist, files.len()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::parse_file;

    fn outcome(sources: &[(&str, &str)], allowlist: &str) -> CgOutcome {
        let irs: Vec<_> = sources.iter().map(|(p, s)| parse_file(p, s)).collect();
        let graph = crate::resolve::build(&irs);
        let al = Allowlist::parse(allowlist).unwrap();
        analyze(&graph, &al, sources.len())
    }

    const ROOT: &str = r#"
[[root]]
pattern = "rm_serve::serve"
reason = "test root"
"#;

    #[test]
    fn panic_reachable_across_crates_carries_a_chain() {
        let out = outcome(
            &[
                (
                    "crates/serve/src/lib.rs",
                    "pub fn serve() { rm_core::rank(); }",
                ),
                (
                    "crates/core/src/lib.rs",
                    "pub fn rank() { helper(); }\nfn helper() { let x: Option<u32> = None; x.unwrap(); }",
                ),
            ],
            ROOT,
        );
        let f = out
            .findings
            .iter()
            .find(|f| f.rule == RULE_PANIC)
            .expect("panic finding");
        assert_eq!(
            f.chain,
            ["rm_serve::serve", "rm_core::rank", "rm_core::helper"],
            "call-depth evidence"
        );
        assert_eq!(f.what, ".unwrap(…)");
    }

    #[test]
    fn alloc_outside_closure_is_not_a_finding() {
        let out = outcome(
            &[(
                "crates/core/src/lib.rs",
                "pub fn offline_fit() { let mut v = Vec::new(); v.push(1); }",
            )],
            ROOT,
        );
        assert!(out.findings.iter().all(|f| f.rule != RULE_ALLOC));
        // …but the root that matched nothing fails the run.
        assert_eq!(out.unmatched_roots.len(), 1);
        assert!(!out.is_clean());
    }

    #[test]
    fn approvals_absorb_and_stale_approvals_fail() {
        let sources: &[(&str, &str)] = &[(
            "crates/serve/src/lib.rs",
            "pub fn serve() { let mut v = Vec::new(); v.push(1); }",
        )];
        let ok = outcome(
            sources,
            r#"
[[root]]
pattern = "rm_serve::serve"
reason = "test root"

[[approve]]
rule = "alloc-reachable-from-serve-path"
fn = "rm_serve::serve"
reason = "bounded per-request scratch"
"#,
        );
        assert!(ok.findings.is_empty());
        assert_eq!(ok.approved.len(), 1);
        assert_eq!(ok.approved[0].sites, 2, "Vec::new + push");
        let stale = outcome(
            sources,
            r#"
[[root]]
pattern = "rm_serve::serve"
reason = "test root"

[[approve]]
rule = "alloc-reachable-from-serve-path"
fn = "rm_serve::serve"
reason = "bounded per-request scratch"

[[approve]]
rule = "panic-reachable-from-serve-path"
fn = "rm_serve::nothing_here"
reason = "never matches"
"#,
        );
        assert_eq!(stale.stale_approvals.len(), 1);
        assert!(!stale.is_clean());
    }

    #[test]
    fn unresolved_inside_closure_fails_closed() {
        let out = outcome(
            &[(
                "crates/serve/src/lib.rs",
                "pub fn serve() { mystery(); }\npub fn elsewhere() { enigma(); }",
            )],
            ROOT,
        );
        let unresolved: Vec<&CgFinding> = out
            .findings
            .iter()
            .filter(|f| f.rule == RULE_UNRESOLVED)
            .collect();
        assert_eq!(unresolved.len(), 1, "only the closure one is a finding");
        assert_eq!(out.unresolved_total, 2, "…but both are counted");
        assert_eq!(out.unresolved_in_closure, 1);
    }

    #[test]
    fn tainted_float_accum_fires_workspace_wide() {
        let out = outcome(
            &[(
                "crates/eval/src/lib.rs",
                r"
                use std::collections::HashMap;
                pub fn mean(m: &HashMap<u32, f32>) -> f32 {
                    let total: f32 = m.values().sum::<f32>();
                    total / m.len() as f32
                }
                ",
            )],
            "[[root]]\npattern = \"mean\"\nreason = \"cover the fn so the root matches\"\n",
        );
        assert!(out.findings.iter().any(|f| f.rule == RULE_TAINT));
    }

    #[test]
    fn wildcard_and_bare_name_root_patterns() {
        assert!(pattern_matches(
            "recommend*",
            "rm_serve::E::recommend_batch"
        ));
        assert!(pattern_matches(
            "rm_serve::engine::ServingEngine::serve_*",
            "rm_serve::engine::ServingEngine::serve_chunk_with"
        ));
        assert!(!pattern_matches(
            "recommend",
            "rm_serve::E::recommend_batch"
        ));
        assert!(!pattern_matches("rm_serve::E::f", "rm_core::E::f"));
    }
}
