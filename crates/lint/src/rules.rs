//! The rule engine: nine token-pattern rules, each tied to an invariant
//! the paper's Table-1 reproducibility or the serving SLO depends on.
//!
//! Every rule is a pure function from a token stream to anchor-token
//! indices; the engine maps anchors to `file:line:col`, applies the
//! `cfg(test)` / `tests/`-directory exemption policy recorded on the rule,
//! and threads survivors through the allowlist.

use crate::lexer::{TokKind, Token};
use std::collections::BTreeSet;

/// One lint rule: metadata plus its matcher and scope.
pub struct Rule {
    /// Stable identifier, used in diagnostics and allowlist entries.
    pub id: &'static str,
    /// One-line description for `--list-rules` and reports.
    pub summary: &'static str,
    /// Diagnostic message attached to each finding.
    pub message: &'static str,
    /// Concrete remediation advice.
    pub fix_hint: &'static str,
    /// Human-readable scope description for `--list-rules`.
    pub scope: &'static str,
    /// True when findings inside `#[cfg(test)]` items or `tests/`
    /// directories are exempt.
    pub test_exempt: bool,
    /// Path filter (workspace-relative, `/`-separated).
    pub applies: fn(&str) -> bool,
    /// Matcher: returns anchor token indices, unsorted, may contain dups.
    pub check: fn(&[Token]) -> Vec<usize>,
}

/// All rules, in diagnostic-table order.
pub static RULES: &[Rule] = &[
    Rule {
        id: "dot-outside-vecops",
        summary: "hand-rolled .zip().map().sum() dot reduction outside rm_sparse::vecops",
        message: "hand-rolled dot-product reduction outside the blessed vecops kernels",
        fix_hint: "route through rm_sparse::vecops::dot (or dot_ref in reference tests); \
                   the lane-unrolled kernels pin the reduction order Table 1 depends on",
        scope: "crates/** except crates/sparse/src/vecops.rs (tests included)",
        test_exempt: false,
        applies: |p| p.starts_with("crates/") && p != "crates/sparse/src/vecops.rs",
        check: check_dot_chain,
    },
    Rule {
        id: "instant-now-in-serve",
        summary: "Instant::now() in rm-serve bypassing the Clock abstraction",
        message: "direct Instant::now() call bypasses the Clock abstraction",
        fix_hint: "take time from a Clock (MonotonicClock in production, FakeClock in \
                   tests) so deadlines and metrics stay testable and fault-injectable",
        scope: "crates/serve/** (src and tests, cfg(test) included)",
        test_exempt: false,
        applies: |p| p.starts_with("crates/serve/"),
        check: check_instant_now,
    },
    Rule {
        id: "lock-join-unwrap-in-serve",
        summary: "unwrap()/expect() on lock()/join() results in the serving path",
        message: "unwrap/expect on a lock()/join() result can abort the serving path",
        fix_hint: "locks: unwrap_or_else(|e| e.into_inner()) to tolerate poisoning; \
                   joins: degrade the affected chunk instead of propagating the panic",
        scope: "crates/serve/src/** (cfg(test) and tests/ exempt)",
        test_exempt: true,
        applies: |p| p.starts_with("crates/serve/") && !p.contains("/tests/"),
        check: check_lock_join_unwrap,
    },
    Rule {
        id: "nondeterministic-iteration",
        summary: "HashMap/HashSet iteration in model-affecting crates",
        message: "iteration over a HashMap/HashSet visits entries in a nondeterministic order",
        fix_hint: "use a BTreeMap, or drain into a Vec and sort by a total key before \
                   the order can reach model output or on-disk artifacts",
        scope: "src/ of rm-core, rm-dataset, rm-embed, rm-datagen, rm-eval (cfg(test) exempt)",
        test_exempt: true,
        applies: |p| {
            [
                "crates/core/src/",
                "crates/dataset/src/",
                "crates/embed/src/",
                "crates/datagen/src/",
                "crates/eval/src/",
            ]
            .iter()
            .any(|pre| p.starts_with(pre))
        },
        check: check_nondet_iteration,
    },
    Rule {
        id: "panic-in-library",
        summary: "panic!/unreachable!/todo!/unimplemented! in rm-serve library code",
        message: "explicit panic in serving library code violates the degrade-don't-abort policy",
        fix_hint: "return an error or a fallback result; the serving path must degrade, \
                   never abort (DESIGN.md \u{00a7}10)",
        scope: "crates/serve/src/** (cfg(test) exempt)",
        test_exempt: true,
        applies: |p| p.starts_with("crates/serve/src/"),
        check: check_panic_in_library,
    },
    Rule {
        id: "float-accum-outside-vecops",
        summary: "manual f32 accumulation outside the blessed kernels",
        message: "manual f32 accumulation does not follow the documented vecops reduction order",
        fix_hint: "route through rm_sparse::vecops (dot/cosine/norm) or allowlist with a \
                   proof that the accumulation order is fixed and does not feed Table 1",
        scope: "src/ of rm-core, rm-embed, rm-eval, rm-sparse except vecops.rs (cfg(test) exempt)",
        test_exempt: true,
        applies: |p| {
            p != "crates/sparse/src/vecops.rs"
                && [
                    "crates/core/src/",
                    "crates/embed/src/",
                    "crates/eval/src/",
                    "crates/sparse/src/",
                ]
                .iter()
                .any(|pre| p.starts_with(pre))
        },
        check: check_float_accum,
    },
    Rule {
        id: "recommender-call-outside-pipeline",
        summary: "direct Recommender calls in serve code outside the candidate pipeline",
        message: "direct recommender call bypasses the candidate pipeline's provenance, \
                  merge, and filter stages",
        fix_hint: "route the request through the pipeline stages (sources \u{2192} merge \u{2192} \
                   filters \u{2192} rank) so every answer carries provenance; allowlist only \
                   the degraded fallback walk",
        scope: "crates/serve/src/** except src/pipeline/** (cfg(test) exempt)",
        test_exempt: true,
        applies: |p| {
            p.starts_with("crates/serve/src/") && !p.starts_with("crates/serve/src/pipeline/")
        },
        check: check_recommender_call,
    },
    Rule {
        id: "unbounded-channel-or-vec-queue-in-serve",
        summary: "unbounded mpsc::channel() or VecDeque::new() queue in rm-serve library code",
        message: "unbounded queue in serving code absorbs overload instead of shedding it",
        fix_hint: "bound the queue: mpsc::sync_channel(n) / VecDeque::with_capacity(n) behind \
                   admission control, so excess load is shed at the edge (DESIGN.md \u{00a7}16)",
        scope: "crates/serve/src/** (cfg(test) exempt)",
        test_exempt: true,
        applies: |p| p.starts_with("crates/serve/src/"),
        check: check_unbounded_queue,
    },
    Rule {
        id: "f32-widening-in-quant",
        summary: "hand-rolled i8 casts or f32 widening of quantized data outside rm_core::quant",
        message: "hand-rolled quantization arithmetic bypasses the blessed quant module and \
                  its fused kernels",
        fix_hint: "quantize through rm_core::quant (QuantArtifact/QuantQuery) and score with \
                   the vecops i8/f16 kernels; widening codes to f32 per element forfeits the \
                   memory win and breaks the exact-integer-accumulation contract",
        scope: "crates/** except rm_core::quant and rm_sparse::vecops (cfg(test) exempt)",
        test_exempt: true,
        applies: |p| {
            p.starts_with("crates/")
                && p != "crates/core/src/quant.rs"
                && p != "crates/sparse/src/vecops.rs"
        },
        check: check_quant_widening,
    },
];

/// Looks up a rule by id.
#[must_use]
pub fn rule_by_id(id: &str) -> Option<&'static Rule> {
    RULES.iter().find(|r| r.id == id)
}

/// Rationale + example diagnostic per rule, for `--explain <rule>`.
/// Covers both the token rules above and the call-graph rules in
/// [`crate::callgraph`].
static EXPLAIN: &[(&str, &str, &str)] = &[
    (
        "dot-outside-vecops",
        "Float addition is not associative: a hand-rolled .zip().map().sum() reduction \
         accumulates in whatever order the iterator chain produces, which changes the \
         low-order bits of every score — and Table 1 is reproduced bit-for-bit. The \
         lane-unrolled vecops kernels pin one documented reduction order.",
        "error[dot-outside-vecops]: hand-rolled dot-product reduction outside the blessed \
         vecops kernels\n  --> crates/eval/src/metrics.rs:3:10\n   |\n 3 |         .zip(b)",
    ),
    (
        "instant-now-in-serve",
        "Serving deadlines, breaker timeouts, and latency metrics must be testable on \
         simulated time. A direct Instant::now() hard-wires the wall clock, so chaos tests \
         cannot fast-forward through timeouts and the loadgen cannot replay deterministically.",
        "error[instant-now-in-serve]: direct Instant::now() call bypasses the Clock \
         abstraction\n  --> crates/serve/src/engine.rs:120:17",
    ),
    (
        "lock-join-unwrap-in-serve",
        "A panicking worker poisons its mutex; unwrap() on lock() then aborts every later \
         request that touches the same lock — one fault becomes a full outage. Poison-tolerant \
         recovery (into_inner) plus per-chunk degradation keeps the blast radius at one chunk.",
        "error[lock-join-unwrap-in-serve]: unwrap/expect on a lock()/join() result can abort \
         the serving path\n  --> crates/serve/src/engine.rs:88:30",
    ),
    (
        "nondeterministic-iteration",
        "HashMap/HashSet iteration order varies per process (SipHash keys are randomized). \
         If that order reaches model output or an on-disk artifact, two identical runs \
         produce different bytes and the repro gate fails chasing ghosts.",
        "error[nondeterministic-iteration]: iteration over a HashMap/HashSet visits entries \
         in a nondeterministic order\n  --> crates/dataset/src/genre.rs:41:52",
    ),
    (
        "panic-in-library",
        "The serving path degrades, never aborts (DESIGN.md §10): a panic!() in library code \
         turns one bad user or one poisoned model slot into a crashed process. Errors must \
         flow as values so the engine can shed, fall back, or skip.",
        "error[panic-in-library]: explicit panic in serving library code violates the \
         degrade-don't-abort policy\n  --> crates/serve/src/filters.rs:57:9",
    ),
    (
        "float-accum-outside-vecops",
        "Same associativity argument as dot-outside-vecops, for any f32 reduction: \
         sum::<f32>(), fold(0.0f32, …) and friends commit to an accumulation order. Outside \
         the blessed kernels that order is an accident of iterator internals; an allowlist \
         entry must prove the order is fixed and the result never feeds Table 1.",
        "error[float-accum-outside-vecops]: manual f32 accumulation does not follow the \
         documented vecops reduction order\n  --> crates/embed/src/exact.rs:30:46",
    ),
    (
        "recommender-call-outside-pipeline",
        "Every served answer must carry provenance (which source, which stage, why). A direct \
         model.recommend() in serve code skips the sources → merge → filters → rank pipeline, \
         producing unexplainable answers; only the degraded fallback walk is allowlisted.",
        "error[recommender-call-outside-pipeline]: direct recommender call bypasses the \
         candidate pipeline's provenance, merge, and filter stages\n  --> \
         crates/serve/src/engine.rs:1736:32",
    ),
    (
        "unbounded-channel-or-vec-queue-in-serve",
        "An unbounded queue converts overload into latency and memory growth: requests queue \
         instead of shedding, p99 explodes, and the process eventually OOMs. Bounded queues \
         behind admission control shed at the edge while the SLO holds (DESIGN.md §16).",
        "error[unbounded-channel-or-vec-queue-in-serve]: unbounded queue in serving code \
         absorbs overload instead of shedding it\n  --> crates/serve/src/queue.rs:77:31",
    ),
    (
        "f32-widening-in-quant",
        "The quantized artifacts win memory and throughput only while scoring stays in \
         integer domain: widening i8 codes to f32 per element re-pays the f32 cost and \
         silently changes rounding. All quant arithmetic lives in rm_core::quant and the \
         fused vecops kernels, where the exact-integer-accumulation contract is tested.",
        "error[f32-widening-in-quant]: hand-rolled quantization arithmetic bypasses the \
         blessed quant module and its fused kernels\n  --> crates/serve/src/rank.rs:203:22",
    ),
    (
        crate::callgraph::RULE_PANIC,
        "Scope-based panic rules only see files under crates/serve/src — a .unwrap() in an \
         rm-core helper called from serve_chunk_with is invisible to them. This rule walks \
         the call graph from the declared request roots, so the policy follows the code: \
         anything reachable from a root must degrade, not abort. Diagnostics carry the \
         root→sink chain as evidence.",
        "error[panic-reachable-from-serve-path]: may-panic operation reachable from a request \
         root: .expect(…)\n  --> crates/core/src/bpr.rs:188:36 (rm_core::bpr::Bpr::model_ref)\n  \
         via: rm_serve::engine::ServingEngine::serve_chunk_with → rm_core::bpr::Bpr::score → \
         rm_core::bpr::Bpr::model_ref",
    ),
    (
        crate::callgraph::RULE_ALLOC,
        "At million-user scale the request path cannot allocate per call: allocator churn \
         dominates tail latency and fragments the heap under load. Buffers are preallocated \
         at install time and reused per chunk; each surviving allocation must be approved as \
         bounded scratch with a written reason.",
        "error[alloc-reachable-from-serve-path]: allocation reachable from a request root: \
         format!(…)\n  --> crates/core/src/quant.rs:700:19 (rm_core::quant::QuantRecommender::new)\n  \
         via: rm_serve::engine::ServingEngine::serve_chunk_with → \
         rm_serve::pipeline::sources::QuantCfNeighboursSource::new → \
         rm_core::quant::QuantRecommender::new",
    ),
    (
        crate::callgraph::RULE_TAINT,
        "The deadly combination for reproducibility: HashMap/HashSet iteration (random order \
         per process) feeding an f32 accumulation (order-dependent result). Each alone can be \
         benign — together they guarantee run-to-run bit drift. The rule runs workspace-wide \
         because taint corrupts Table 1 wherever it happens, not just on the serve path.",
        "error[tainted-float-accum]: hash-order iteration feeds a float accumulation in the \
         same body\n  --> crates/eval/src/metrics.rs:44:22 (rm_eval::metrics::mean_score)",
    ),
    (
        crate::callgraph::RULE_UNRESOLVED,
        "The reachability rules are only sound if the closure is complete. A call the \
         resolver cannot attribute (closure parameter, function-pointer field) is a hole in \
         the proof — so inside a serve root's closure it fails the lint rather than silently \
         shrinking the audit surface. Fail closed, like the allowlist itself.",
        "error[unresolved-call-in-serve-closure]: call inside the serve closure that name \
         resolution cannot attribute: cannot resolve `callback(…)`\n  --> \
         crates/serve/src/engine.rs:410:9 (rm_serve::engine::ServingEngine::serve_chunk_with)",
    ),
];

/// Renders the `--explain <rule>` text: summary, scope, rationale, and an
/// example diagnostic. Returns `None` for unknown rule ids.
#[must_use]
pub fn explain(id: &str) -> Option<String> {
    let (_, rationale, example) = EXPLAIN.iter().find(|(eid, _, _)| *eid == id)?;
    let mut out = String::new();
    if let Some(rule) = rule_by_id(id) {
        out.push_str(&format!("{}: {}\n", rule.id, rule.summary));
        out.push_str(&format!("scope: {}\n", rule.scope));
        out.push_str(&format!(
            "test exemption: {}\n",
            if rule.test_exempt {
                "cfg(test) / tests-dir findings exempt"
            } else {
                "none (tests included)"
            }
        ));
        out.push_str(&format!("fix: {}\n", rule.fix_hint));
    } else if let Some(rule) = crate::callgraph::cg_rule_by_id(id) {
        out.push_str(&format!("{}: {}\n", rule.id, rule.summary));
        out.push_str(
            "scope: call-graph closure of the [[root]] entries in scripts/lint_allowlist.toml\n",
        );
        out.push_str(&format!("fix: {}\n", rule.fix_hint));
    } else {
        return None;
    }
    out.push_str(&format!("\nwhy:\n{rationale}\n"));
    out.push_str(&format!("\nexample:\n{example}\n"));
    Some(out)
}

/// Returns the index just past the `)` matching the `(` at `open`, tracking
/// nested parens/brackets/braces. `None` when unbalanced.
fn skip_parens(t: &[Token], open: usize) -> Option<usize> {
    let mut paren = 0i32;
    let mut j = open;
    while j < t.len() {
        let tok = &t[j];
        if tok.is_punct('(') {
            paren += 1;
        } else if tok.is_punct(')') {
            paren -= 1;
            if paren == 0 {
                return Some(j + 1);
            }
        }
        j += 1;
    }
    None
}

/// Rule 1: `.zip( … ).map( … ).sum(` / `.sum::<…>(` chains.
fn check_dot_chain(t: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..t.len() {
        if !(t[i].is_punct('.')
            && t.get(i + 1).is_some_and(|x| x.is_ident("zip"))
            && t.get(i + 2).is_some_and(|x| x.is_punct('(')))
        {
            continue;
        }
        let Some(j) = skip_parens(t, i + 2) else {
            continue;
        };
        if !(t.get(j).is_some_and(|x| x.is_punct('.'))
            && t.get(j + 1).is_some_and(|x| x.is_ident("map"))
            && t.get(j + 2).is_some_and(|x| x.is_punct('(')))
        {
            continue;
        }
        let Some(k) = skip_parens(t, j + 2) else {
            continue;
        };
        if t.get(k).is_some_and(|x| x.is_punct('.'))
            && t.get(k + 1).is_some_and(|x| x.is_ident("sum"))
            && t.get(k + 2)
                .is_some_and(|x| x.is_punct('(') || x.is_punct(':'))
        {
            out.push(i + 1);
        }
    }
    out
}

/// Rule 2: `Instant :: now ( )`.
fn check_instant_now(t: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..t.len() {
        if t[i].is_ident("Instant")
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_ident("now"))
            && t.get(i + 4).is_some_and(|x| x.is_punct('('))
            && t.get(i + 5).is_some_and(|x| x.is_punct(')'))
        {
            out.push(i);
        }
    }
    out
}

/// Rule 3: `. lock|join ( ) . unwrap|expect (`.
fn check_lock_join_unwrap(t: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..t.len() {
        if t[i].is_punct('.')
            && t.get(i + 1)
                .is_some_and(|x| x.is_ident("lock") || x.is_ident("join"))
            && t.get(i + 2).is_some_and(|x| x.is_punct('('))
            && t.get(i + 3).is_some_and(|x| x.is_punct(')'))
            && t.get(i + 4).is_some_and(|x| x.is_punct('.'))
            && t.get(i + 5)
                .is_some_and(|x| x.is_ident("unwrap") || x.is_ident("expect"))
            && t.get(i + 6).is_some_and(|x| x.is_punct('('))
        {
            out.push(i + 5);
        }
    }
    out
}

/// Order-sensitive `HashMap`/`HashSet` methods for rule 4.
const ITER_METHODS: &[&str] = &[
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Index of the first `;` after `from` at balanced paren/bracket/brace
/// depth (statement end), or `t.len()`.
pub(crate) fn stmt_end(t: &[Token], from: usize) -> usize {
    let (mut paren, mut bracket, mut brace) = (0i32, 0i32, 0i32);
    let mut j = from;
    while j < t.len() {
        let tok = &t[j];
        if tok.kind == TokKind::Punct {
            match tok.text.as_bytes().first() {
                Some(b'(') => paren += 1,
                Some(b')') => paren -= 1,
                Some(b'[') => bracket += 1,
                Some(b']') => bracket -= 1,
                Some(b'{') => brace += 1,
                Some(b'}') => brace -= 1,
                Some(b';') if paren <= 0 && bracket <= 0 && brace <= 0 => return j,
                _ => {}
            }
        }
        j += 1;
    }
    t.len()
}

/// Rule 4: heuristic local dataflow. A forward pass tracks identifiers
/// bound to `HashMap`/`HashSet` (via `let` statements whose span mentions
/// the type, or `name: … HashMap …` field/parameter annotations) with
/// shadowing applied at statement end — so `let v: Vec<_> = m.into_iter()…`
/// still flags the drain on the right-hand side before `m` is shadowed.
/// Flags `name.iter()`-family calls and `for … in [&][mut] name {` loops.
pub(crate) fn check_nondet_iteration(t: &[Token]) -> Vec<usize> {
    let mut bound: BTreeSet<String> = BTreeSet::new();
    // (apply-at index, name, bind?) — shadowing takes effect at `;`.
    let mut pending: Vec<(usize, String, bool)> = Vec::new();
    let mut out = Vec::new();
    for i in 0..t.len() {
        pending.retain(|(at, name, bind)| {
            if *at <= i {
                if *bind {
                    bound.insert(name.clone());
                } else {
                    bound.remove(name);
                }
                false
            } else {
                true
            }
        });
        let tok = &t[i];
        // Binding via `let [mut] NAME … ;` (skip `if let` / `while let`,
        // whose operand is a pattern, not a fresh map binding).
        if tok.is_ident("let")
            && !(i > 0 && (t[i - 1].is_ident("if") || t[i - 1].is_ident("while")))
        {
            let mut j = i + 1;
            if t.get(j).is_some_and(|x| x.is_ident("mut")) {
                j += 1;
            }
            if let Some(name_tok) = t.get(j).filter(|x| x.kind == TokKind::Ident) {
                let end = stmt_end(t, j);
                let has_hash = t[i..end]
                    .iter()
                    .any(|x| x.is_ident("HashMap") || x.is_ident("HashSet"));
                pending.push((end, name_tok.text.clone(), has_hash));
            }
        }
        // Binding via `NAME : … HashMap …` (parameters, struct fields). A
        // complete non-Hash annotation *unbinds* the name — a later fn's
        // `readings: Vec<Reading>` parameter must not inherit a HashMap
        // binding of the same name from an earlier fn. The unbind is
        // deferred to the next `{` / `;` so a shadowing statement's
        // right-hand side (`let tf: Vec<_> = tf.into_iter()…`) is still
        // checked against the old binding.
        if tok.kind == TokKind::Ident
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && !t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && !(i > 0 && t[i - 1].is_punct(':'))
        {
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut verdict = None;
            while j < t.len() && j < i + 24 {
                let x = &t[j];
                if x.is_ident("HashMap") || x.is_ident("HashSet") {
                    verdict = Some(true);
                    break;
                }
                if x.is_punct('<') {
                    angle += 1;
                } else if x.is_punct('>') {
                    angle -= 1;
                } else if angle <= 0
                    && (x.is_punct(',')
                        || x.is_punct(';')
                        || x.is_punct(')')
                        || x.is_punct('{')
                        || x.is_punct('='))
                {
                    verdict = Some(false);
                    break;
                }
                j += 1;
            }
            match verdict {
                Some(true) => {
                    bound.insert(tok.text.clone());
                }
                Some(false) if bound.contains(&tok.text) => {
                    let until = (j..t.len())
                        .find(|&k| t[k].is_punct('{') || t[k].is_punct(';'))
                        .unwrap_or(t.len());
                    pending.push((until, tok.text.clone(), false));
                }
                _ => {}
            }
        }
        // Usage: `NAME . iter-family (` (covers `self.NAME.…` — the NAME
        // token itself anchors).
        if tok.kind == TokKind::Ident
            && bound.contains(&tok.text)
            && t.get(i + 1).is_some_and(|x| x.is_punct('.'))
            && t.get(i + 2).is_some_and(|x| {
                x.kind == TokKind::Ident && ITER_METHODS.contains(&x.text.as_str())
            })
            && t.get(i + 3).is_some_and(|x| x.is_punct('('))
        {
            out.push(i + 2);
        }
        // Usage: `for PAT in [&][mut] [self .] NAME {`.
        if tok.is_ident("for") {
            let mut j = i + 1;
            while j < t.len() && j < i + 40 && !t[j].is_ident("in") {
                j += 1;
            }
            if t.get(j).is_some_and(|x| x.is_ident("in")) {
                let mut k = j + 1;
                while t
                    .get(k)
                    .is_some_and(|x| x.is_punct('&') || x.is_ident("mut"))
                {
                    k += 1;
                }
                if t.get(k).is_some_and(|x| x.is_ident("self"))
                    && t.get(k + 1).is_some_and(|x| x.is_punct('.'))
                {
                    k += 2;
                }
                if t.get(k)
                    .is_some_and(|x| x.kind == TokKind::Ident && bound.contains(&x.text))
                    && t.get(k + 1).is_some_and(|x| x.is_punct('{'))
                {
                    out.push(k);
                }
            }
        }
    }
    out
}

/// Rule 5: `panic! / unreachable! / todo! / unimplemented!` invocations.
fn check_panic_in_library(t: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..t.len() {
        if t[i].kind == TokKind::Ident
            && matches!(
                t[i].text.as_str(),
                "panic" | "unreachable" | "todo" | "unimplemented"
            )
            && t.get(i + 1).is_some_and(|x| x.is_punct('!'))
        {
            out.push(i);
        }
    }
    out
}

/// Rule 6: manual f32 accumulation — `sum::<f32>()` turbofish,
/// `let [mut] NAME : f32 = … .sum() … ;`, and `fold(<f32-literal>`.
pub(crate) fn check_float_accum(t: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..t.len() {
        // `sum :: < f32 > (`
        if t[i].is_ident("sum")
            && t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_punct('<'))
            && t.get(i + 4).is_some_and(|x| x.is_ident("f32"))
            && t.get(i + 5).is_some_and(|x| x.is_punct('>'))
            && t.get(i + 6).is_some_and(|x| x.is_punct('('))
        {
            out.push(i);
        }
        // `let [mut] NAME : f32 = … sum ( ) … ;`
        if t[i].is_ident("let") {
            let mut j = i + 1;
            if t.get(j).is_some_and(|x| x.is_ident("mut")) {
                j += 1;
            }
            if t.get(j).is_some_and(|x| x.kind == TokKind::Ident)
                && t.get(j + 1).is_some_and(|x| x.is_punct(':'))
                && t.get(j + 2).is_some_and(|x| x.is_ident("f32"))
                && t.get(j + 3).is_some_and(|x| x.is_punct('='))
            {
                let end = stmt_end(t, j + 3);
                for s in j + 4..end.saturating_sub(1) {
                    if t[s].is_ident("sum")
                        && t.get(s + 1).is_some_and(|x| x.is_punct('('))
                        && t.get(s + 2).is_some_and(|x| x.is_punct(')'))
                    {
                        out.push(s);
                    }
                }
            }
        }
        // `fold ( 0.0f32` — explicit f32 seed.
        if t[i].is_ident("fold")
            && t.get(i + 1).is_some_and(|x| x.is_punct('('))
            && t.get(i + 2)
                .is_some_and(|x| x.kind == TokKind::Num && x.text.ends_with("f32"))
        {
            out.push(i);
        }
    }
    out
}

/// Rule 7: `. recommend|recommend_batch|recommend_batch_into|rank_all (`
/// — direct model invocations on the serving path must live inside the
/// pipeline modules (or the allowlisted degraded fallback walk).
fn check_recommender_call(t: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..t.len() {
        if t[i].is_punct('.')
            && t.get(i + 1).is_some_and(|x| {
                matches!(
                    x.text.as_str(),
                    "recommend" | "recommend_batch" | "recommend_batch_into" | "rank_all"
                ) && x.kind == TokKind::Ident
            })
            && t.get(i + 2).is_some_and(|x| x.is_punct('('))
        {
            out.push(i + 1);
        }
    }
    out
}

/// Rule 8: `mpsc :: channel (` and `VecDeque :: new (` — the two ways an
/// unbounded in-memory queue sneaks into the serving path. Bounded
/// constructors (`sync_channel`, `with_capacity`) pass.
fn check_unbounded_queue(t: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..t.len() {
        let unbounded = (t[i].is_ident("mpsc"), t[i].is_ident("VecDeque"));
        if !(unbounded.0 || unbounded.1) {
            continue;
        }
        let ctor = if unbounded.0 { "channel" } else { "new" };
        if t.get(i + 1).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 2).is_some_and(|x| x.is_punct(':'))
            && t.get(i + 3).is_some_and(|x| x.is_ident(ctor))
            && t.get(i + 4).is_some_and(|x| x.is_punct('('))
        {
            out.push(i);
        }
    }
    out
}

/// True for identifiers that mark a statement as touching quantized data:
/// the `i8` primitive itself, or a quant-flavoured name (`quantize`,
/// `QuantRow`, `dequantize_into`, …). `quantile`-family names are
/// statistics, not storage, and do not count.
fn is_quantish(text: &str) -> bool {
    if text == "i8" {
        return true;
    }
    let lower = text.to_ascii_lowercase();
    lower.contains("quant") && !lower.contains("quantile")
}

/// Rule 9: hand-rolled quantization arithmetic. Flags every `as i8` cast
/// (quantization must go through `rm_core::quant`'s clamp-and-scale
/// encoder), and `as f32` casts inside statements that touch quantized
/// data — an `i8` token or a quant-flavoured identifier in the same
/// statement — which indicate per-element widening instead of the fused
/// integer kernels.
fn check_quant_widening(t: &[Token]) -> Vec<usize> {
    let mut out = Vec::new();
    for i in 0..t.len() {
        if !t[i].is_ident("as") {
            continue;
        }
        let Some(next) = t.get(i + 1) else { continue };
        if next.is_ident("i8") {
            out.push(i + 1);
            continue;
        }
        if !next.is_ident("f32") {
            continue;
        }
        // Statement window: previous `;`/`{`/`}` to the closing `;`.
        let start = (0..i)
            .rev()
            .find(|&j| {
                t[j].kind == TokKind::Punct
                    && matches!(t[j].text.as_bytes().first(), Some(b';' | b'{' | b'}'))
            })
            .map_or(0, |j| j + 1);
        let end = stmt_end(t, i);
        let touches_quant = t[start..end]
            .iter()
            .any(|x| x.kind == TokKind::Ident && is_quantish(&x.text));
        if touches_quant {
            out.push(i + 1);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::{lex, mark_test_regions};

    fn anchors(check: fn(&[Token]) -> Vec<usize>, src: &str) -> Vec<String> {
        let mut toks = lex(src);
        mark_test_regions(&mut toks);
        check(&toks)
            .into_iter()
            .map(|i| toks[i].text.clone())
            .collect()
    }

    #[test]
    fn dot_chain_fires_on_code_not_strings() {
        let hits = anchors(
            check_dot_chain,
            "let d: f32 = a.iter().zip(b).map(|(x, y)| x * y).sum();",
        );
        assert_eq!(hits, vec!["zip"]);
        assert!(anchors(check_dot_chain, r#"let s = "a.zip(b).map(f).sum()";"#).is_empty());
        assert!(anchors(check_dot_chain, "// a.zip(b).map(f).sum()\nlet x = 1;").is_empty());
    }

    #[test]
    fn dot_chain_spans_lines_and_turbofish() {
        let src = "a.iter()\n  .zip(b.iter())\n  .map(|(x, y)| x * y)\n  .sum::<f32>()";
        assert_eq!(anchors(check_dot_chain, src), vec!["zip"]);
    }

    #[test]
    fn dot_chain_ignores_broken_chains() {
        assert!(anchors(check_dot_chain, "a.zip(b).map(f).collect::<Vec<_>>()").is_empty());
        assert!(anchors(check_dot_chain, "a.zip(b).filter(f).sum::<f32>()").is_empty());
    }

    #[test]
    fn instant_now_matches_call_only() {
        assert_eq!(
            anchors(check_instant_now, "let t0 = Instant::now();"),
            vec!["Instant"]
        );
        assert!(anchors(check_instant_now, "use std::time::Instant;").is_empty());
    }

    #[test]
    fn lock_join_unwrap_variants() {
        assert_eq!(
            anchors(check_lock_join_unwrap, "let g = mu.lock().unwrap();"),
            vec!["unwrap"]
        );
        assert_eq!(
            anchors(check_lock_join_unwrap, "h.join().expect(\"worker\");"),
            vec!["expect"]
        );
        assert!(anchors(
            check_lock_join_unwrap,
            "mu.lock().unwrap_or_else(|e| e.into_inner());"
        )
        .is_empty());
        assert!(anchors(check_lock_join_unwrap, "path.join(\"x\").unwrap();").is_empty());
    }

    #[test]
    fn nondet_iteration_flags_bound_maps() {
        let src = "let mut m: HashMap<u32, f32> = HashMap::new();\n\
                   for (k, v) in &m { use_it(k, v); }\n\
                   let total: u32 = m.values().sum();";
        let hits = anchors(check_nondet_iteration, src);
        assert_eq!(hits, vec!["m", "values"]);
    }

    #[test]
    fn nondet_iteration_respects_shadowing() {
        // RHS drain of the shadowing statement is still flagged; uses of
        // the new (Vec) binding afterwards are not.
        let src = "let mut tf: HashMap<u32, u32> = HashMap::new();\n\
                   let mut tf: Vec<(u32, u32)> = tf.into_iter().collect();\n\
                   tf.iter().for_each(drop);";
        let hits = anchors(check_nondet_iteration, src);
        assert_eq!(hits, vec!["into_iter"]);
    }

    #[test]
    fn nondet_iteration_sees_params_and_fields() {
        let src = "fn f(df: &HashMap<String, u32>) { for k in df.keys() { go(k); } }";
        assert_eq!(anchors(check_nondet_iteration, src), vec!["keys"]);
        let src = "struct S { seen: HashSet<u32> }\n\
                   impl S { fn go(&self) { self.seen.iter().count(); } }";
        assert_eq!(anchors(check_nondet_iteration, src), vec!["iter"]);
    }

    #[test]
    fn nondet_iteration_does_not_leak_bindings_across_fns() {
        // `readings` is a HashMap in the first fn; the second fn's
        // Vec-typed parameter of the same name must not stay bound.
        let src = "fn a() { let mut readings: HashMap<u32, u32> = HashMap::new();\n\
                   for k in readings.keys() { go(k); } }\n\
                   fn b(readings: Vec<u32>) { for r in &readings { go(r); }\n\
                   readings.into_iter().count(); }";
        let hits = anchors(check_nondet_iteration, src);
        assert_eq!(hits, vec!["keys"]);
    }

    #[test]
    fn nondet_iteration_ignores_point_lookups_and_vecs() {
        let src = "let mut m: HashMap<u32, u32> = HashMap::new();\n\
                   m.insert(1, 2); let x = m.get(&1); let n = m.len();\n\
                   let v: Vec<u32> = vec![];\n\
                   for y in v.iter() { go(y); }";
        assert!(anchors(check_nondet_iteration, src).is_empty());
    }

    #[test]
    fn panic_macros_fire_but_paths_do_not() {
        assert_eq!(
            anchors(check_panic_in_library, "panic!(\"boom\");"),
            vec!["panic"]
        );
        assert_eq!(
            anchors(check_panic_in_library, "unreachable!()"),
            vec!["unreachable"]
        );
        assert!(anchors(check_panic_in_library, "std::panic::catch_unwind(f);").is_empty());
    }

    #[test]
    fn float_accum_patterns() {
        assert_eq!(
            anchors(check_float_accum, "let n = xs.iter().map(sq).sum::<f32>();"),
            vec!["sum"]
        );
        assert_eq!(
            anchors(
                check_float_accum,
                "let norm: f32 = xs.iter().map(sq).sum();"
            ),
            vec!["sum"]
        );
        assert_eq!(
            anchors(check_float_accum, "xs.iter().fold(0.0f32, |a, b| a + b)"),
            vec!["fold"]
        );
        // f64 accumulation is deliberately out of scope.
        assert!(anchors(check_float_accum, "let n: f64 = xs.iter().sum();").is_empty());
        assert!(anchors(check_float_accum, "xs.iter().fold(0.0, |a, b| a + b)").is_empty());
    }

    #[test]
    fn rule_table_is_consistent() {
        let mut seen = std::collections::BTreeSet::new();
        for r in RULES {
            assert!(seen.insert(r.id), "duplicate rule id {}", r.id);
            assert!(rule_by_id(r.id).is_some());
        }
        assert_eq!(RULES.len(), 9);
        assert!(rule_by_id("no-such-rule").is_none());
    }

    #[test]
    fn scopes_match_spec() {
        let r1 = rule_by_id("dot-outside-vecops").unwrap();
        assert!((r1.applies)("crates/embed/src/exact.rs"));
        assert!(!(r1.applies)("crates/sparse/src/vecops.rs"));
        let r3 = rule_by_id("lock-join-unwrap-in-serve").unwrap();
        assert!((r3.applies)("crates/serve/src/engine.rs"));
        assert!(!(r3.applies)("crates/serve/tests/chaos.rs"));
        let r5 = rule_by_id("panic-in-library").unwrap();
        assert!(!(r5.applies)("crates/serve/tests/chaos.rs"));
        let r6 = rule_by_id("float-accum-outside-vecops").unwrap();
        assert!((r6.applies)("crates/sparse/src/dense.rs"));
        assert!(!(r6.applies)("crates/sparse/src/vecops.rs"));
        let r7 = rule_by_id("recommender-call-outside-pipeline").unwrap();
        assert!((r7.applies)("crates/serve/src/engine.rs"));
        assert!(!(r7.applies)("crates/serve/src/pipeline/sources.rs"));
        assert!(!(r7.applies)("crates/serve/tests/pipeline_tests.rs"));
        assert!(!(r7.applies)("crates/core/src/bpr.rs"));
        let r8 = rule_by_id("unbounded-channel-or-vec-queue-in-serve").unwrap();
        assert!((r8.applies)("crates/serve/src/overload.rs"));
        assert!(!(r8.applies)("crates/serve/tests/overload_tests.rs"));
        assert!(!(r8.applies)("crates/eval/src/harness.rs"));
        let r9 = rule_by_id("f32-widening-in-quant").unwrap();
        assert!((r9.applies)("crates/serve/src/engine.rs"));
        assert!((r9.applies)("crates/bench/src/bin/quant-bench.rs"));
        assert!(!(r9.applies)("crates/core/src/quant.rs"));
        assert!(!(r9.applies)("crates/sparse/src/vecops.rs"));
    }

    #[test]
    fn quant_widening_flags_casts_in_quant_context_only() {
        // Any `as i8` cast is hand-rolled quantization.
        assert_eq!(
            anchors(check_quant_widening, "let code = (v * 127.0) as i8;"),
            vec!["i8"]
        );
        // `as f32` fires only when the statement touches quantized data.
        assert_eq!(
            anchors(
                check_quant_widening,
                "let x = f32::from(byte as i8) * scale; let y = quant_row[0] as f32;"
            ),
            vec!["i8", "f32"]
        );
        assert_eq!(
            anchors(
                check_quant_widening,
                "let s = dequantized.iter().map(|&c| c as f32 * scale);"
            ),
            vec!["f32"]
        );
        // Plain numeric widening with no quant context passes.
        assert!(anchors(check_quant_widening, "let r = count as f32 / n as f32;").is_empty());
        // Quantile statistics are not quantization.
        assert!(anchors(check_quant_widening, "let p99 = quantile_rank as f32 / n;").is_empty());
    }

    #[test]
    fn unbounded_queue_flags_ctors_not_bounded_ones() {
        assert_eq!(
            anchors(check_unbounded_queue, "let (tx, rx) = mpsc::channel();"),
            vec!["mpsc"]
        );
        assert_eq!(
            anchors(
                check_unbounded_queue,
                "let q: VecDeque<Req> = VecDeque::new();"
            ),
            vec!["VecDeque"]
        );
        assert!(anchors(
            check_unbounded_queue,
            "let (tx, rx) = mpsc::sync_channel(64);"
        )
        .is_empty());
        assert!(anchors(
            check_unbounded_queue,
            "let q = VecDeque::with_capacity(cap);"
        )
        .is_empty());
        // Type annotations alone do not anchor — only constructions.
        assert!(anchors(check_unbounded_queue, "entries: VecDeque<QueuedRequest>,").is_empty());
    }

    #[test]
    fn recommender_call_variants() {
        assert_eq!(
            anchors(
                check_recommender_call,
                "let recs = model.recommend(user, k);"
            ),
            vec!["recommend"]
        );
        assert_eq!(
            anchors(
                check_recommender_call,
                "model.recommend_batch_into(&users, k, &mut out);"
            ),
            vec!["recommend_batch_into"]
        );
        assert_eq!(
            anchors(check_recommender_call, "let all = m.rank_all(user);"),
            vec!["rank_all"]
        );
        // Method definitions and unrelated idents do not anchor.
        assert!(anchors(
            check_recommender_call,
            "fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> { body() }"
        )
        .is_empty());
        assert!(anchors(check_recommender_call, "self.recommend_explained(user, k)").is_empty());
    }
}
