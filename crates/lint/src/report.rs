//! Machine-readable `LINT_report.json` emission.
//!
//! The report is the self-audit artifact committed with the repo: CI can
//! diff it to see when a new suppression appears or a rule's finding count
//! moves. JSON is hand-rolled (sorted, stable field order, trailing
//! newline) so the artifact is byte-reproducible across runs.

use crate::allowlist::AllowEntry;
use crate::diag::Finding;
use crate::engine::RunOutcome;
use crate::rules::RULES;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding, indent: &str) -> String {
    format!(
        "{indent}{{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
        esc(f.rule),
        esc(&f.path),
        f.line,
        f.col,
        esc(&f.message)
    )
}

/// Renders the full report. Findings and suppressions are pre-sorted by
/// the engine; rules appear in table order with both live and allowlisted
/// counts so a clean run still documents what the allowlist carries.
#[must_use]
pub fn render(outcome: &RunOutcome, entries: &[AllowEntry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"tool\": \"rm-lint\",");
    let _ = writeln!(s, "  \"files_scanned\": {},", outcome.files_scanned);
    let _ = writeln!(
        s,
        "  \"total\": {{\"findings\": {}, \"allowlisted\": {}, \"stale_allowlist_entries\": {}}},",
        outcome.findings.len(),
        outcome.suppressed.len(),
        outcome.stale.len()
    );
    s.push_str("  \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        let live = outcome.findings.iter().filter(|f| f.rule == r.id).count();
        let allowed = outcome
            .suppressed
            .iter()
            .filter(|(f, _)| f.rule == r.id)
            .count();
        let _ = write!(
            s,
            "    {{\"id\": \"{}\", \"findings\": {live}, \"allowlisted\": {allowed}}}",
            esc(r.id)
        );
        s.push_str(if i + 1 < RULES.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"findings\": [\n");
    for (i, f) in outcome.findings.iter().enumerate() {
        s.push_str(&finding_json(f, "    "));
        s.push_str(if i + 1 < outcome.findings.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"allowlisted\": [\n");
    for (i, (f, entry_idx)) in outcome.suppressed.iter().enumerate() {
        let reason = entries
            .get(*entry_idx)
            .map_or("", |e: &AllowEntry| e.reason.as_str());
        let _ = write!(
            s,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(reason)
        );
        s.push_str(if i + 1 < outcome.suppressed.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunOutcome;

    #[test]
    fn report_is_valid_enough_json_and_counts_match() {
        let outcome = RunOutcome {
            findings: vec![Finding {
                rule: "panic-in-library",
                path: "crates/serve/src/x.rs".into(),
                line: 3,
                col: 5,
                message: "boom \"quoted\"".into(),
                fix_hint: "",
                source_line: "panic!()".into(),
            }],
            suppressed: vec![],
            stale: vec![],
            files_scanned: 7,
        };
        let s = render(&outcome, &[]);
        assert!(s.contains("\"files_scanned\": 7"));
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("{\"id\": \"panic-in-library\", \"findings\": 1, \"allowlisted\": 0}"));
        assert!(s.ends_with("}\n"));
        // Every rule appears exactly once.
        for r in RULES {
            assert_eq!(s.matches(&format!("\"id\": \"{}\"", r.id)).count(), 1);
        }
    }
}
