//! Machine-readable `LINT_report.json` emission.
//!
//! The report is the self-audit artifact committed with the repo: CI can
//! diff it to see when a new suppression appears or a rule's finding count
//! moves. JSON is hand-rolled (sorted, stable field order, trailing
//! newline) so the artifact is byte-reproducible across runs.

use crate::allowlist::AllowEntry;
use crate::callgraph::{CgOutcome, CG_RULES};
use crate::diag::Finding;
use crate::engine::RunOutcome;
use crate::rules::RULES;
use std::fmt::Write as _;

/// Escapes a string for a JSON string literal.
fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn finding_json(f: &Finding, indent: &str) -> String {
    format!(
        "{indent}{{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"col\": {}, \"message\": \"{}\"}}",
        esc(f.rule),
        esc(&f.path),
        f.line,
        f.col,
        esc(&f.message)
    )
}

/// Renders the full report. Findings and suppressions are pre-sorted by
/// the engine; rules appear in table order with both live and allowlisted
/// counts so a clean run still documents what the allowlist carries.
#[must_use]
pub fn render(outcome: &RunOutcome, entries: &[AllowEntry]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"tool\": \"rm-lint\",");
    let _ = writeln!(s, "  \"files_scanned\": {},", outcome.files_scanned);
    let _ = writeln!(
        s,
        "  \"total\": {{\"findings\": {}, \"allowlisted\": {}, \"stale_allowlist_entries\": {}}},",
        outcome.findings.len(),
        outcome.suppressed.len(),
        outcome.stale.len()
    );
    s.push_str("  \"rules\": [\n");
    for (i, r) in RULES.iter().enumerate() {
        let live = outcome.findings.iter().filter(|f| f.rule == r.id).count();
        let allowed = outcome
            .suppressed
            .iter()
            .filter(|(f, _)| f.rule == r.id)
            .count();
        let _ = write!(
            s,
            "    {{\"id\": \"{}\", \"findings\": {live}, \"allowlisted\": {allowed}}}",
            esc(r.id)
        );
        s.push_str(if i + 1 < RULES.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"findings\": [\n");
    for (i, f) in outcome.findings.iter().enumerate() {
        s.push_str(&finding_json(f, "    "));
        s.push_str(if i + 1 < outcome.findings.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"allowlisted\": [\n");
    for (i, (f, entry_idx)) in outcome.suppressed.iter().enumerate() {
        let reason = entries
            .get(*entry_idx)
            .map_or("", |e: &AllowEntry| e.reason.as_str());
        let _ = write!(
            s,
            "    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"reason\": \"{}\"}}",
            esc(f.rule),
            esc(&f.path),
            f.line,
            esc(reason)
        );
        s.push_str(if i + 1 < outcome.suppressed.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

/// Renders the byte-stable `CALLGRAPH_report.json`: roots with their
/// matched functions, graph and closure statistics, per-rule counts, live
/// findings (with root→sink chains) and approvals. Everything is emitted
/// in deterministic order so CI can diff the artifact.
#[must_use]
pub fn render_callgraph(out: &CgOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"tool\": \"rm-lint-callgraph\",");
    let _ = writeln!(
        s,
        "  \"workspace\": {{\"files_scanned\": {}, \"functions\": {}, \"edges\": {}, \
         \"unresolved_calls\": {}}},",
        out.files_scanned, out.functions, out.edges, out.unresolved_total
    );
    let _ = writeln!(
        s,
        "  \"closure\": {{\"functions\": {}, \"index_sites\": {}, \"assert_sites\": {}, \
         \"unresolved_calls\": {}}},",
        out.closure_functions,
        out.closure_index_sites,
        out.closure_assert_sites,
        out.unresolved_in_closure
    );
    s.push_str("  \"roots\": [\n");
    for (i, (pattern, matched)) in out.roots.iter().enumerate() {
        let quals: Vec<String> = matched.iter().map(|q| format!("\"{}\"", esc(q))).collect();
        let _ = write!(
            s,
            "    {{\"pattern\": \"{}\", \"matched\": [{}]}}",
            esc(pattern),
            quals.join(", ")
        );
        s.push_str(if i + 1 < out.roots.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"rules\": [\n");
    for (i, r) in CG_RULES.iter().enumerate() {
        let live = out.findings.iter().filter(|f| f.rule == r.id).count();
        let approved: usize = out
            .approved
            .iter()
            .filter(|a| a.rule == r.id)
            .map(|a| a.sites)
            .sum();
        let _ = write!(
            s,
            "    {{\"id\": \"{}\", \"findings\": {live}, \"approved_sites\": {approved}}}",
            esc(r.id)
        );
        s.push_str(if i + 1 < CG_RULES.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"findings\": [\n");
    for (i, f) in out.findings.iter().enumerate() {
        let chain: Vec<String> = f.chain.iter().map(|q| format!("\"{}\"", esc(q))).collect();
        let _ = write!(
            s,
            "    {{\"rule\": \"{}\", \"fn\": \"{}\", \"file\": \"{}\", \"line\": {}, \
             \"col\": {}, \"what\": \"{}\", \"chain\": [{}]}}",
            esc(f.rule),
            esc(&f.qual),
            esc(&f.file),
            f.line,
            f.col,
            esc(&f.what),
            chain.join(", ")
        );
        s.push_str(if i + 1 < out.findings.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ],\n");
    s.push_str("  \"approved\": [\n");
    for (i, a) in out.approved.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"rule\": \"{}\", \"fn\": \"{}\", \"sites\": {}, \"reason\": \"{}\"}}",
            esc(&a.rule),
            esc(&a.func),
            a.sites,
            esc(&a.reason)
        );
        s.push_str(if i + 1 < out.approved.len() {
            ",\n"
        } else {
            "\n"
        });
    }
    s.push_str("  ]\n");
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunOutcome;

    #[test]
    fn report_is_valid_enough_json_and_counts_match() {
        let outcome = RunOutcome {
            findings: vec![Finding {
                rule: "panic-in-library",
                path: "crates/serve/src/x.rs".into(),
                line: 3,
                col: 5,
                message: "boom \"quoted\"".into(),
                fix_hint: "",
                source_line: "panic!()".into(),
            }],
            suppressed: vec![],
            stale: vec![],
            files_scanned: 7,
        };
        let s = render(&outcome, &[]);
        assert!(s.contains("\"files_scanned\": 7"));
        assert!(s.contains("\\\"quoted\\\""));
        assert!(s.contains("{\"id\": \"panic-in-library\", \"findings\": 1, \"allowlisted\": 0}"));
        assert!(s.ends_with("}\n"));
        // Every rule appears exactly once.
        for r in RULES {
            assert_eq!(s.matches(&format!("\"id\": \"{}\"", r.id)).count(), 1);
        }
    }

    #[test]
    fn callgraph_report_lists_rules_roots_and_chains() {
        let out = CgOutcome {
            findings: vec![crate::callgraph::CgFinding {
                rule: crate::callgraph::RULE_PANIC,
                qual: "rm_core::bpr::Bpr::model_ref".into(),
                file: "crates/core/src/bpr.rs".into(),
                line: 188,
                col: 36,
                what: ".expect(…)".into(),
                chain: vec![
                    "rm_serve::engine::serve".into(),
                    "rm_core::bpr::Bpr::model_ref".into(),
                ],
            }],
            approved: vec![],
            stale_approvals: vec![],
            unmatched_roots: vec![],
            roots: vec![("serve*".into(), vec!["rm_serve::engine::serve".into()])],
            functions: 10,
            edges: 14,
            files_scanned: 3,
            closure_functions: 5,
            closure_index_sites: 2,
            closure_assert_sites: 1,
            unresolved_total: 4,
            unresolved_in_closure: 0,
        };
        let s = render_callgraph(&out);
        assert!(s.contains("\"tool\": \"rm-lint-callgraph\""));
        assert!(s.contains("\"functions\": 10, \"edges\": 14, \"unresolved_calls\": 4"));
        assert!(s.contains("\"pattern\": \"serve*\", \"matched\": [\"rm_serve::engine::serve\"]"));
        assert!(s.contains(
            "\"chain\": [\"rm_serve::engine::serve\", \"rm_core::bpr::Bpr::model_ref\"]"
        ));
        for r in CG_RULES {
            assert_eq!(s.matches(&format!("\"id\": \"{}\"", r.id)).count(), 1);
        }
        assert!(s.ends_with("}\n"));
    }
}
