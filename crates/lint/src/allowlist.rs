//! Structured allowlist: suppressions with mandatory reasons and
//! stale-entry detection.
//!
//! The old `grep -vFf allowlist.txt` gates had two failure modes this
//! format closes. A blank line in the file made `grep -vFf` drop *every*
//! finding (fail-open); here an empty value or entry is a parse error
//! (fail-closed). And entries outlived the code they excused; here an
//! entry that suppresses nothing fails the run as *stale*, so the
//! allowlist can only shrink unless someone writes a new reason.
//!
//! Format (TOML subset, parsed by hand to keep the crate dependency-free):
//!
//! ```toml
//! [[allow]]
//! rule = "instant-now-in-serve"
//! path = "crates/serve/src/registry.rs"
//! line-pattern = "let deadline = Instant::now() + wait;"
//! reason = "cross-process registry file lock; wall-clock wait is the point"
//! ```
//!
//! `rule`, `path`, and `reason` are mandatory; `line-pattern` (a literal
//! substring of the offending source line) is optional but strongly
//! recommended — without it the entry suppresses the rule for the whole
//! file.

use crate::diag::Finding;
use crate::rules;

/// One parsed `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (validated against the rule table).
    pub rule: String,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Literal substring that must occur in the finding's source line.
    pub line_pattern: Option<String>,
    /// Why the suppression is sound. Mandatory.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for error messages.
    pub src_line: u32,
}

/// One parsed `[[root]]` entry: a call-graph reachability root.
///
/// `pattern` is either a fully qualified function pattern
/// (`rm_serve::engine::ServingEngine::serve_chunk_with`, trailing `*`
/// allowed) or a bare function-name pattern (`recommend*`, matched against
/// every function's last segment). A root that matches no live function
/// fails the run — roots can never silently rot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootEntry {
    /// Function pattern declaring a request-path entry point.
    pub pattern: String,
    /// Why this is a serving root. Mandatory.
    pub reason: String,
    /// 1-based line of the `[[root]]` header, for error messages.
    pub src_line: u32,
}

/// One parsed `[[approve]]` entry: a reachability-rule suppression keyed
/// by function (not by line), since call-graph findings name functions.
///
/// `func` is a fully qualified function pattern with optional trailing
/// `*`. An entry that approves nothing fails the run as stale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApproveEntry {
    /// Call-graph rule id (validated against the call-graph rule table).
    pub rule: String,
    /// Fully qualified function pattern the approval covers.
    pub func: String,
    /// Why the behaviour is acceptable on the serve path. Mandatory.
    pub reason: String,
    /// 1-based line of the `[[approve]]` header, for error messages.
    pub src_line: u32,
}

/// A parsed allowlist file.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    /// `[[allow]]` entries in file order (token-rule suppressions).
    pub entries: Vec<AllowEntry>,
    /// `[[root]]` entries in file order (call-graph roots).
    pub roots: Vec<RootEntry>,
    /// `[[approve]]` entries in file order (call-graph suppressions).
    pub approves: Vec<ApproveEntry>,
}

/// Outcome of filtering findings through an allowlist.
#[derive(Debug)]
pub struct FilterResult {
    /// Findings not matched by any entry — real violations.
    pub kept: Vec<Finding>,
    /// Suppressed findings, paired with the index of the entry that
    /// matched them (first matching entry wins).
    pub suppressed: Vec<(Finding, usize)>,
    /// Indices of entries that matched nothing — stale, fails the run.
    pub stale: Vec<usize>,
}

impl Allowlist {
    /// Parses the TOML-subset allowlist. Fail-closed: any malformed line,
    /// empty value, unknown key, duplicate key, unknown rule id, or
    /// incomplete entry is an error. Three section kinds are accepted:
    /// `[[allow]]` (token-rule suppressions), `[[root]]` (call-graph
    /// roots) and `[[approve]]` (call-graph suppressions).
    pub fn parse(text: &str) -> Result<Self, String> {
        #[derive(Clone, Copy, PartialEq)]
        enum Section {
            Allow,
            Root,
            Approve,
        }
        // Accumulator for the entry being parsed: header line, section
        // kind, and the key/value pairs seen so far.
        type Pending = (u32, Section, Vec<(String, String)>);
        let mut out = Self::default();
        let mut cur: Option<Pending> = None;
        let flush = |cur: &mut Option<Pending>, out: &mut Self| -> Result<(), String> {
            let Some((hdr, section, fields)) = cur.take() else {
                return Ok(());
            };
            let get = |k: &str| {
                fields
                    .iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v.clone())
            };
            let need = |k: &str| {
                get(k).ok_or_else(|| format!("allowlist line {hdr}: entry missing `{k}`"))
            };
            match section {
                Section::Allow => {
                    let rule = need("rule")?;
                    let path = need("path")?;
                    let reason = get("reason").ok_or_else(|| {
                        format!("allowlist line {hdr}: entry missing mandatory `reason`")
                    })?;
                    if rules::rule_by_id(&rule).is_none() {
                        return Err(format!(
                            "allowlist line {hdr}: unknown rule `{rule}` (see --list-rules)"
                        ));
                    }
                    out.entries.push(AllowEntry {
                        rule,
                        path,
                        line_pattern: get("line-pattern"),
                        reason,
                        src_line: hdr,
                    });
                }
                Section::Root => {
                    let pattern = need("pattern")?;
                    let reason = get("reason").ok_or_else(|| {
                        format!("allowlist line {hdr}: entry missing mandatory `reason`")
                    })?;
                    out.roots.push(RootEntry {
                        pattern,
                        reason,
                        src_line: hdr,
                    });
                }
                Section::Approve => {
                    let rule = need("rule")?;
                    let func = need("fn")?;
                    let reason = get("reason").ok_or_else(|| {
                        format!("allowlist line {hdr}: entry missing mandatory `reason`")
                    })?;
                    if crate::callgraph::cg_rule_by_id(&rule).is_none() {
                        return Err(format!(
                            "allowlist line {hdr}: unknown call-graph rule `{rule}` \
                             (see --list-rules)"
                        ));
                    }
                    out.approves.push(ApproveEntry {
                        rule,
                        func,
                        reason,
                        src_line: hdr,
                    });
                }
            }
            Ok(())
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = (idx + 1) as u32;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let section = match line {
                "[[allow]]" => Some(Section::Allow),
                "[[root]]" => Some(Section::Root),
                "[[approve]]" => Some(Section::Approve),
                _ => None,
            };
            if let Some(s) = section {
                flush(&mut cur, &mut out)?;
                cur = Some((lineno, s, Vec::new()));
                continue;
            }
            let Some((key, val)) = line.split_once('=') else {
                return Err(format!(
                    "allowlist line {lineno}: expected `key = \"value\"`, got `{line}`"
                ));
            };
            let key = key.trim();
            let val = val.trim();
            let allowed: &[&str] = match cur {
                Some((_, Section::Allow, _)) | None => &["rule", "path", "line-pattern", "reason"],
                Some((_, Section::Root, _)) => &["pattern", "reason"],
                Some((_, Section::Approve, _)) => &["rule", "fn", "reason"],
            };
            if !allowed.contains(&key) {
                return Err(format!("allowlist line {lineno}: unknown key `{key}`"));
            }
            let Some(val) = val.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return Err(format!(
                    "allowlist line {lineno}: value for `{key}` must be double-quoted"
                ));
            };
            if val.is_empty() {
                return Err(format!(
                    "allowlist line {lineno}: empty value for `{key}` \
                     (the old grep gates failed open on blank entries; this one refuses them)"
                ));
            }
            let Some((_, _, fields)) = cur.as_mut() else {
                return Err(format!(
                    "allowlist line {lineno}: `{key}` before any [[allow]] / [[root]] / \
                     [[approve]] header"
                ));
            };
            if fields.iter().any(|(k, _)| k == key) {
                return Err(format!("allowlist line {lineno}: duplicate key `{key}`"));
            }
            fields.push((key.to_string(), val.to_string()));
        }
        flush(&mut cur, &mut out)?;
        Ok(out)
    }

    /// Splits findings into kept / suppressed, and reports stale entries.
    #[must_use]
    pub fn filter(&self, findings: Vec<Finding>) -> FilterResult {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        for f in findings {
            let hit = self.entries.iter().position(|e| {
                e.rule == f.rule
                    && e.path == f.path
                    && e.line_pattern
                        .as_deref()
                        .is_none_or(|p| f.source_line.contains(p))
            });
            match hit {
                Some(i) => {
                    used[i] = true;
                    suppressed.push((f, i));
                }
                None => kept.push(f),
            }
        }
        let stale = (0..self.entries.len()).filter(|&i| !used[i]).collect();
        FilterResult {
            kept,
            suppressed,
            stale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line: 1,
            col: 1,
            message: String::new(),
            fix_hint: "",
            source_line: line.into(),
        }
    }

    const GOOD: &str = r#"
# comment
[[allow]]
rule = "instant-now-in-serve"
path = "crates/serve/src/registry.rs"
line-pattern = "Instant::now() + wait"
reason = "file-lock wait"
"#;

    #[test]
    fn parses_and_suppresses() {
        let al = Allowlist::parse(GOOD).unwrap();
        assert_eq!(al.entries.len(), 1);
        let r = al.filter(vec![finding(
            "instant-now-in-serve",
            "crates/serve/src/registry.rs",
            "let deadline = Instant::now() + wait;",
        )]);
        assert!(r.kept.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert!(r.stale.is_empty());
    }

    #[test]
    fn stale_entry_is_reported() {
        let al = Allowlist::parse(GOOD).unwrap();
        let r = al.filter(vec![]);
        assert_eq!(r.stale, vec![0]);
    }

    #[test]
    fn wrong_path_or_pattern_does_not_suppress() {
        let al = Allowlist::parse(GOOD).unwrap();
        let r = al.filter(vec![
            finding(
                "instant-now-in-serve",
                "crates/serve/src/engine.rs",
                "Instant::now() + wait",
            ),
            finding(
                "instant-now-in-serve",
                "crates/serve/src/registry.rs",
                "let t = Instant::now();",
            ),
        ]);
        assert_eq!(r.kept.len(), 2);
        assert_eq!(r.stale, vec![0]);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let bad = "[[allow]]\nrule = \"panic-in-library\"\npath = \"x.rs\"\n";
        let err = Allowlist::parse(bad).unwrap_err();
        assert!(err.contains("mandatory `reason`"), "{err}");
    }

    #[test]
    fn empty_value_is_fail_closed() {
        let bad = "[[allow]]\nrule = \"\"\npath = \"x.rs\"\nreason = \"r\"\n";
        let err = Allowlist::parse(bad).unwrap_err();
        assert!(err.contains("empty value"), "{err}");
    }

    #[test]
    fn unknown_rule_and_key_are_errors() {
        let bad = "[[allow]]\nrule = \"no-such\"\npath = \"x.rs\"\nreason = \"r\"\n";
        assert!(Allowlist::parse(bad).unwrap_err().contains("unknown rule"));
        let bad = "[[allow]]\nrulez = \"x\"\n";
        assert!(Allowlist::parse(bad).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn duplicate_key_and_orphan_field_are_errors() {
        let bad = "[[allow]]\nrule = \"panic-in-library\"\nrule = \"panic-in-library\"\n";
        assert!(Allowlist::parse(bad).unwrap_err().contains("duplicate key"));
        let bad = "rule = \"panic-in-library\"\n";
        assert!(Allowlist::parse(bad)
            .unwrap_err()
            .contains("before any [[allow]]"));
    }

    #[test]
    fn unquoted_value_is_an_error() {
        let bad = "[[allow]]\nrule = panic-in-library\n";
        assert!(Allowlist::parse(bad).unwrap_err().contains("double-quoted"));
    }

    #[test]
    fn parses_root_and_approve_sections() {
        let text = r#"
[[root]]
pattern = "rm_serve::engine::ServingEngine::serve_chunk_with"
reason = "every request funnels through the chunk server"

[[approve]]
rule = "alloc-reachable-from-serve-path"
fn = "rm_serve::engine::ServingEngine::serve_chunk_with"
reason = "per-chunk scratch buffers, bounded by chunk size"
"#;
        let al = Allowlist::parse(text).unwrap();
        assert!(al.entries.is_empty());
        assert_eq!(al.roots.len(), 1);
        assert_eq!(
            al.roots[0].pattern,
            "rm_serve::engine::ServingEngine::serve_chunk_with"
        );
        assert_eq!(al.approves.len(), 1);
        assert_eq!(al.approves[0].rule, "alloc-reachable-from-serve-path");
    }

    #[test]
    fn approve_requires_known_callgraph_rule_and_reason() {
        let bad = "[[approve]]\nrule = \"panic-in-library\"\nfn = \"x::y\"\nreason = \"r\"\n";
        assert!(Allowlist::parse(bad)
            .unwrap_err()
            .contains("unknown call-graph rule"));
        let bad = "[[approve]]\nrule = \"tainted-float-accum\"\nfn = \"x::y\"\n";
        assert!(Allowlist::parse(bad)
            .unwrap_err()
            .contains("mandatory `reason`"));
    }

    #[test]
    fn root_requires_pattern_and_rejects_foreign_keys() {
        let bad = "[[root]]\nreason = \"r\"\n";
        assert!(Allowlist::parse(bad)
            .unwrap_err()
            .contains("missing `pattern`"));
        let bad = "[[root]]\npath = \"x.rs\"\n";
        assert!(Allowlist::parse(bad).unwrap_err().contains("unknown key"));
    }
}
