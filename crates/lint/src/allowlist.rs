//! Structured allowlist: suppressions with mandatory reasons and
//! stale-entry detection.
//!
//! The old `grep -vFf allowlist.txt` gates had two failure modes this
//! format closes. A blank line in the file made `grep -vFf` drop *every*
//! finding (fail-open); here an empty value or entry is a parse error
//! (fail-closed). And entries outlived the code they excused; here an
//! entry that suppresses nothing fails the run as *stale*, so the
//! allowlist can only shrink unless someone writes a new reason.
//!
//! Format (TOML subset, parsed by hand to keep the crate dependency-free):
//!
//! ```toml
//! [[allow]]
//! rule = "instant-now-in-serve"
//! path = "crates/serve/src/registry.rs"
//! line-pattern = "let deadline = Instant::now() + wait;"
//! reason = "cross-process registry file lock; wall-clock wait is the point"
//! ```
//!
//! `rule`, `path`, and `reason` are mandatory; `line-pattern` (a literal
//! substring of the offending source line) is optional but strongly
//! recommended — without it the entry suppresses the rule for the whole
//! file.

use crate::diag::Finding;
use crate::rules;

/// One parsed `[[allow]]` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule id the entry suppresses (validated against the rule table).
    pub rule: String,
    /// Workspace-relative path the entry applies to.
    pub path: String,
    /// Literal substring that must occur in the finding's source line.
    pub line_pattern: Option<String>,
    /// Why the suppression is sound. Mandatory.
    pub reason: String,
    /// 1-based line of the `[[allow]]` header, for error messages.
    pub src_line: u32,
}

/// A parsed allowlist file.
#[derive(Debug, Default, Clone)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

/// Outcome of filtering findings through an allowlist.
#[derive(Debug)]
pub struct FilterResult {
    /// Findings not matched by any entry — real violations.
    pub kept: Vec<Finding>,
    /// Suppressed findings, paired with the index of the entry that
    /// matched them (first matching entry wins).
    pub suppressed: Vec<(Finding, usize)>,
    /// Indices of entries that matched nothing — stale, fails the run.
    pub stale: Vec<usize>,
}

impl Allowlist {
    /// Parses the TOML-subset allowlist. Fail-closed: any malformed line,
    /// empty value, unknown key, duplicate key, unknown rule id, or
    /// incomplete entry is an error.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        // Accumulator for the entry being parsed.
        let mut cur: Option<(u32, Vec<(String, String)>)> = None;
        let flush = |cur: &mut Option<(u32, Vec<(String, String)>)>,
                     entries: &mut Vec<AllowEntry>|
         -> Result<(), String> {
            let Some((hdr, fields)) = cur.take() else {
                return Ok(());
            };
            let get = |k: &str| {
                fields
                    .iter()
                    .find(|(key, _)| key == k)
                    .map(|(_, v)| v.clone())
            };
            let rule =
                get("rule").ok_or_else(|| format!("allowlist line {hdr}: entry missing `rule`"))?;
            let path =
                get("path").ok_or_else(|| format!("allowlist line {hdr}: entry missing `path`"))?;
            let reason = get("reason")
                .ok_or_else(|| format!("allowlist line {hdr}: entry missing mandatory `reason`"))?;
            if rules::rule_by_id(&rule).is_none() {
                return Err(format!(
                    "allowlist line {hdr}: unknown rule `{rule}` (see --list-rules)"
                ));
            }
            entries.push(AllowEntry {
                rule,
                path,
                line_pattern: get("line-pattern"),
                reason,
                src_line: hdr,
            });
            Ok(())
        };
        for (idx, raw) in text.lines().enumerate() {
            let lineno = (idx + 1) as u32;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                flush(&mut cur, &mut entries)?;
                cur = Some((lineno, Vec::new()));
                continue;
            }
            let Some((key, val)) = line.split_once('=') else {
                return Err(format!(
                    "allowlist line {lineno}: expected `key = \"value\"`, got `{line}`"
                ));
            };
            let key = key.trim();
            let val = val.trim();
            if !matches!(key, "rule" | "path" | "line-pattern" | "reason") {
                return Err(format!("allowlist line {lineno}: unknown key `{key}`"));
            }
            let Some(val) = val.strip_prefix('"').and_then(|v| v.strip_suffix('"')) else {
                return Err(format!(
                    "allowlist line {lineno}: value for `{key}` must be double-quoted"
                ));
            };
            if val.is_empty() {
                return Err(format!(
                    "allowlist line {lineno}: empty value for `{key}` \
                     (the old grep gates failed open on blank entries; this one refuses them)"
                ));
            }
            let Some((_, fields)) = cur.as_mut() else {
                return Err(format!(
                    "allowlist line {lineno}: `{key}` before any [[allow]] header"
                ));
            };
            if fields.iter().any(|(k, _)| k == key) {
                return Err(format!("allowlist line {lineno}: duplicate key `{key}`"));
            }
            fields.push((key.to_string(), val.to_string()));
        }
        flush(&mut cur, &mut entries)?;
        Ok(Self { entries })
    }

    /// Splits findings into kept / suppressed, and reports stale entries.
    #[must_use]
    pub fn filter(&self, findings: Vec<Finding>) -> FilterResult {
        let mut used = vec![false; self.entries.len()];
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        for f in findings {
            let hit = self.entries.iter().position(|e| {
                e.rule == f.rule
                    && e.path == f.path
                    && e.line_pattern
                        .as_deref()
                        .is_none_or(|p| f.source_line.contains(p))
            });
            match hit {
                Some(i) => {
                    used[i] = true;
                    suppressed.push((f, i));
                }
                None => kept.push(f),
            }
        }
        let stale = (0..self.entries.len()).filter(|&i| !used[i]).collect();
        FilterResult {
            kept,
            suppressed,
            stale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, line: &str) -> Finding {
        Finding {
            rule,
            path: path.into(),
            line: 1,
            col: 1,
            message: String::new(),
            fix_hint: "",
            source_line: line.into(),
        }
    }

    const GOOD: &str = r#"
# comment
[[allow]]
rule = "instant-now-in-serve"
path = "crates/serve/src/registry.rs"
line-pattern = "Instant::now() + wait"
reason = "file-lock wait"
"#;

    #[test]
    fn parses_and_suppresses() {
        let al = Allowlist::parse(GOOD).unwrap();
        assert_eq!(al.entries.len(), 1);
        let r = al.filter(vec![finding(
            "instant-now-in-serve",
            "crates/serve/src/registry.rs",
            "let deadline = Instant::now() + wait;",
        )]);
        assert!(r.kept.is_empty());
        assert_eq!(r.suppressed.len(), 1);
        assert!(r.stale.is_empty());
    }

    #[test]
    fn stale_entry_is_reported() {
        let al = Allowlist::parse(GOOD).unwrap();
        let r = al.filter(vec![]);
        assert_eq!(r.stale, vec![0]);
    }

    #[test]
    fn wrong_path_or_pattern_does_not_suppress() {
        let al = Allowlist::parse(GOOD).unwrap();
        let r = al.filter(vec![
            finding(
                "instant-now-in-serve",
                "crates/serve/src/engine.rs",
                "Instant::now() + wait",
            ),
            finding(
                "instant-now-in-serve",
                "crates/serve/src/registry.rs",
                "let t = Instant::now();",
            ),
        ]);
        assert_eq!(r.kept.len(), 2);
        assert_eq!(r.stale, vec![0]);
    }

    #[test]
    fn missing_reason_is_an_error() {
        let bad = "[[allow]]\nrule = \"panic-in-library\"\npath = \"x.rs\"\n";
        let err = Allowlist::parse(bad).unwrap_err();
        assert!(err.contains("mandatory `reason`"), "{err}");
    }

    #[test]
    fn empty_value_is_fail_closed() {
        let bad = "[[allow]]\nrule = \"\"\npath = \"x.rs\"\nreason = \"r\"\n";
        let err = Allowlist::parse(bad).unwrap_err();
        assert!(err.contains("empty value"), "{err}");
    }

    #[test]
    fn unknown_rule_and_key_are_errors() {
        let bad = "[[allow]]\nrule = \"no-such\"\npath = \"x.rs\"\nreason = \"r\"\n";
        assert!(Allowlist::parse(bad).unwrap_err().contains("unknown rule"));
        let bad = "[[allow]]\nrulez = \"x\"\n";
        assert!(Allowlist::parse(bad).unwrap_err().contains("unknown key"));
    }

    #[test]
    fn duplicate_key_and_orphan_field_are_errors() {
        let bad = "[[allow]]\nrule = \"panic-in-library\"\nrule = \"panic-in-library\"\n";
        assert!(Allowlist::parse(bad).unwrap_err().contains("duplicate key"));
        let bad = "rule = \"panic-in-library\"\n";
        assert!(Allowlist::parse(bad)
            .unwrap_err()
            .contains("before any [[allow]]"));
    }

    #[test]
    fn unquoted_value_is_an_error() {
        let bad = "[[allow]]\nrule = panic-in-library\n";
        assert!(Allowlist::parse(bad).unwrap_err().contains("double-quoted"));
    }
}
