//! `rm-lint` — from-scratch static analysis over the workspace sources.
//!
//! The paper's headline result (Table 1) is only reproducible because this
//! repo pins determinism and reduction order everywhere: every dot product
//! goes through the lane-unrolled `rm_sparse::vecops` kernels, serving-path
//! timing flows through the `Clock` abstraction, the serving path degrades
//! instead of aborting, and model-affecting code never iterates a
//! `HashMap`/`HashSet` in an order-sensitive way. Those contracts used to be
//! enforced by `grep | grep -vFf allowlist` gates in `scripts/check.sh`,
//! which knew nothing about strings, comments, or line moves — and silently
//! failed open on a blank allowlist line.
//!
//! `rm-lint` replaces them with a real (if small) static-analysis pass:
//!
//! * [`lexer`] — a token-level Rust lexer (line + nested block comments,
//!   string / raw-string / byte / char literals, lifetime-vs-char
//!   disambiguation) so rules see code, not text;
//! * [`rules`] — the rule engine: per-rule path scopes and `cfg(test)` /
//!   tests-dir exemptions, token-pattern matchers for each invariant;
//! * [`allowlist`] — structured allowlist entries (`rule`, `path`,
//!   `line-pattern`, mandatory `reason`) with stale-entry detection: an
//!   entry that matches nothing fails the run, so suppressions can never
//!   outlive the code they excuse;
//! * [`diag`] — rustc-style `file:line:col` diagnostics;
//! * [`report`] — a machine-readable `LINT_report.json` CI can diff.
//!
//! The crate has no dependencies (no syn, no proc-macro) consistent with
//! the workspace's vendored-only policy. See DESIGN.md §14.

pub mod allowlist;
pub mod callgraph;
pub mod diag;
pub mod engine;
pub mod ir;
pub mod lexer;
pub mod report;
pub mod resolve;
pub mod rules;

pub use allowlist::Allowlist;
pub use callgraph::{run_callgraph, CgOutcome};
pub use diag::Finding;
pub use engine::{run, RunConfig, RunOutcome};
