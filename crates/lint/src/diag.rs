//! Diagnostics: what a rule reports when an invariant is violated.

use std::fmt;

/// One lint finding at a precise source location.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Rule identifier, e.g. `dot-outside-vecops`.
    pub rule: &'static str,
    /// Path of the offending file, relative to the workspace root.
    pub path: String,
    /// 1-based line of the first token of the match.
    pub line: u32,
    /// 1-based column (characters) of the first token of the match.
    pub col: u32,
    /// One-sentence description of the violation.
    pub message: String,
    /// Concrete suggestion for bringing the code back inside the invariant.
    pub fix_hint: &'static str,
    /// The full source line the finding sits on (used by allowlist
    /// `line-pattern` matching and shown in the diagnostic).
    pub source_line: String,
}

impl Finding {
    /// Sort key giving a deterministic report order.
    #[must_use]
    pub fn sort_key(&self) -> (&str, u32, u32, &str) {
        (&self.path, self.line, self.col, self.rule)
    }
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "error[{}]: {}\n  --> {}:{}:{}",
            self.rule, self.message, self.path, self.line, self.col
        )?;
        writeln!(f, "   | {}", self.source_line.trim_end())?;
        write!(f, "   = help: {}", self.fix_hint)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_rustc_style() {
        let f = Finding {
            rule: "demo-rule",
            path: "crates/x/src/lib.rs".into(),
            line: 7,
            col: 13,
            message: "bad thing".into(),
            fix_hint: "do the good thing",
            source_line: "    let x = bad();".into(),
        };
        let s = f.to_string();
        assert!(s.contains("error[demo-rule]: bad thing"));
        assert!(s.contains("--> crates/x/src/lib.rs:7:13"));
        assert!(s.contains("let x = bad();"));
        assert!(s.contains("help: do the good thing"));
    }
}
