//! Self-test: `rm-lint` run over the live workspace, with the committed
//! allowlist, must be clean. This is the executable form of the
//! acceptance criterion "rm-lint runs clean on the workspace".

use rm_lint::allowlist::Allowlist;
use rm_lint::engine::{run, RunConfig};
use std::path::PathBuf;

fn workspace_root() -> PathBuf {
    // crates/lint → workspace root is two levels up.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root")
}

#[test]
fn live_workspace_is_clean_under_committed_allowlist() {
    let root = workspace_root();
    let allowlist_text =
        std::fs::read_to_string(root.join("scripts/lint_allowlist.toml")).expect("allowlist");
    let allowlist = Allowlist::parse(&allowlist_text).expect("allowlist parses");
    let outcome = run(&RunConfig {
        root,
        allowlist: Some(allowlist),
    })
    .expect("lint run");
    assert!(
        outcome.findings.is_empty(),
        "live findings:\n{}",
        outcome
            .findings
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(
        outcome.stale.is_empty(),
        "stale allowlist entries: {:?}",
        outcome.stale
    );
    assert!(outcome.files_scanned > 50, "walker found the workspace");
}

#[test]
fn every_committed_allowlist_entry_has_a_substantive_reason() {
    let root = workspace_root();
    let text =
        std::fs::read_to_string(root.join("scripts/lint_allowlist.toml")).expect("allowlist");
    let allowlist = Allowlist::parse(&text).expect("allowlist parses");
    assert!(!allowlist.entries.is_empty());
    for e in &allowlist.entries {
        assert!(
            e.reason.split_whitespace().count() >= 3,
            "reason for {} at {} is too thin: {}",
            e.rule,
            e.path,
            e.reason
        );
        assert!(
            e.line_pattern.is_some(),
            "entry {} has no line-pattern",
            e.rule
        );
    }
}
