//! Self-performance smoke: the lint must stay cheap enough to sit in
//! every `check.sh` run. Shelling the built binary over the real
//! workspace (token rules + the full call-graph build and closure walk)
//! has to finish inside a generous wall-clock budget — the point is not
//! a tight benchmark but a tripwire for accidentally quadratic parsing
//! or resolution: a debug-profile scan runs in well under a second
//! today, so a 15 s ceiling only fires on a complexity regression.

use std::path::Path;
use std::process::Command;
use std::time::Duration;

use rm_util::clock::{Clock, Deadline, MonotonicClock};

#[test]
fn full_workspace_scan_fits_the_wall_clock_budget() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let clock = MonotonicClock::new();
    let deadline = Deadline::after(&clock, Duration::from_secs(15));

    let out = Command::new(env!("CARGO_BIN_EXE_rm-lint"))
        .arg("--root")
        .arg(&root)
        .output()
        .expect("spawn rm-lint");
    let elapsed = clock.now();

    assert!(
        out.status.success(),
        "workspace lint must be clean for the perf smoke to be meaningful:\n{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr),
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("rm-lint callgraph:"),
        "call-graph pass must have run: {stdout}"
    );
    assert!(
        !deadline.expired(&clock),
        "full scan took {elapsed:?}, over the 15 s budget — check for \
         quadratic parsing or resolution"
    );
}
