//! Fail-closed fixture: `serve_entry` is declared a `[[root]]` by the
//! test that loads this file, and it calls a function the resolver
//! cannot find anywhere in the workspace. The call-graph lint must turn
//! that into an `unresolved-call-in-serve-closure` finding — an edge it
//! cannot see is an edge it must not vouch for — while the identical
//! unknown call in `offline_helper` (outside the closure) is only
//! counted, not failed.

/// Declared serve root for the fixture workspace.
pub fn serve_entry() {
    mystery_dependency();
}

/// Not reachable from the root: its unknown call is tallied but clean.
pub fn offline_helper() {
    another_mystery();
}
