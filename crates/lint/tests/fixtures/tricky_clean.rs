//! Fixture: lexical edge cases that must produce ZERO findings even when
//! linted under the widest scopes (`crates/serve/src/…` and
//! `crates/embed/src/…`). Never compiled.

// a.zip(b).map(f).sum() — commented-out code must not fire.

/* Instant::now() in a block comment.
   /* nested: mu.lock().unwrap() and panic!("boom") */
   still inside the outer comment: for (k, v) in &hash_map {}
*/

fn strings() -> Vec<String> {
    vec![
        "a.zip(b).map(|(x, y)| x * y).sum()".to_string(),
        "Instant::now()".to_string(),
        "mu.lock().unwrap()".to_string(),
        "panic!(\"with \\\"escaped\\\" quotes\")".to_string(),
        r#"raw: h.join().expect("x") and "quoted" inside"#.to_string(),
        r##"double fence: m.keys() with "# inside"##.to_string(),
        String::from_utf8_lossy(b"byte: todo!()").into_owned(),
        String::from_utf8_lossy(br#"raw byte: s.drain()"#).into_owned(),
    ]
}

fn lifetimes<'a>(x: &'a str) -> (&'a str, char, char) {
    // 'a above is a lifetime; 'a' below is a char. A lexer confusing the
    // two would swallow `).map(` here into a char literal and misparse.
    let c = 'a';
    let paren = '(';
    (x, c, paren)
}

fn ranges_and_floats(n: usize) -> f64 {
    // `0..n` must lex as number-dot-dot-ident, not a malformed float;
    // f64 accumulation is out of scope for float-accum-outside-vecops.
    (0..n).map(|i| i as f64).sum::<f64>() + 0.5f64.max(1e-3)
}

fn r#match(r#type: u32) -> u32 {
    // Raw identifiers must not derail the lexer.
    r#type
}

fn allowed_patterns(mu: &std::sync::Mutex<u32>, v: &[u32]) -> u32 {
    // Poison-tolerant lock handling and Vec iteration are fine.
    let g = mu.lock().unwrap_or_else(|e| e.into_inner());
    *g + v.iter().sum::<u32>()
}
