//! Fixture: deliberate violations of the rm-serve rules. Linted by the
//! golden test as `crates/serve/src/fixture.rs` — never compiled.

fn timing() {
    let t0 = Instant::now(); // line 5: instant-now-in-serve
    drop(t0);
}

fn locking(mu: &std::sync::Mutex<u32>) -> u32 {
    let g = mu.lock().unwrap(); // line 10: lock-join-unwrap-in-serve
    *g
}

fn joining(h: std::thread::JoinHandle<u32>) -> u32 {
    h.join().expect("worker") // line 15: lock-join-unwrap-in-serve
}

fn aborting(x: u32) -> u32 {
    match x {
        0 => panic!("zero"),   // line 20: panic-in-library
        1 => unreachable!(),   // line 21: panic-in-library
        2 => todo!(),          // line 22: panic-in-library
        _ => x,
    }
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum() // line 28: dot-outside-vecops
}

#[cfg(test)]
mod tests {
    // Exempt for test-exempt rules (3 and 5) — but rule 2 still scans
    // cfg(test) code, so the Instant below must be reported.
    fn t() {
        let g = mu.lock().unwrap(); // exempt: cfg(test)
        panic!("test-only"); // exempt: cfg(test)
        let t1 = Instant::now(); // line 38: instant-now-in-serve (checked)
    }
}
