//! Fixture: deliberate violations of the model-determinism rules. Linted
//! by the golden test as `crates/embed/src/fixture.rs` — never compiled.

use std::collections::{HashMap, HashSet};

fn iteration() {
    let mut m: HashMap<u32, f32> = HashMap::new();
    for (k, v) in &m { // line 8: nondeterministic-iteration (for-loop)
        drop((k, v));
    }
    let ks: Vec<u32> = m.keys().copied().collect(); // line 11: nondeterministic-iteration
    let mut s: HashSet<u32> = HashSet::new();
    s.retain(|_| true); // line 13: nondeterministic-iteration
}

struct Holder {
    seen: HashSet<u32>,
}

impl Holder {
    fn drain_all(&mut self) -> Vec<u32> {
        self.seen.drain().collect() // line 22: nondeterministic-iteration (field)
    }
}

fn accumulate(xs: &[f32]) -> f32 {
    let total: f32 = xs.iter().map(|v| v * v).sum(); // line 27: float-accum-outside-vecops
    let fold = xs.iter().fold(0.0f32, |a, b| a + b); // line 28: float-accum-outside-vecops
    total + fold + xs.iter().sum::<f32>() // line 29: float-accum-outside-vecops
}

fn dot(a: &[f32], b: &[f32]) -> f32 {
    a.iter()
        .zip(b.iter()) // line 34: dot-outside-vecops (multi-line chain)
        .map(|(x, y)| x * y)
        .sum::<f32>()
}
