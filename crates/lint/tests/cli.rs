//! End-to-end CLI tests: exit codes, diagnostics on stderr, report
//! emission, stale/empty allowlist handling, `--list-rules`.

use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

/// A throwaway workspace under the target tmp dir (no tempfile crate).
struct Sandbox {
    root: PathBuf,
}

impl Sandbox {
    fn new(tag: &str) -> Self {
        let root = PathBuf::from(env!("CARGO_TARGET_TMPDIR")).join(format!("rm-lint-cli-{tag}"));
        let _ = fs::remove_dir_all(&root);
        fs::create_dir_all(root.join("crates/serve/src")).unwrap();
        Self { root }
    }

    fn write(&self, rel: &str, content: &str) {
        let p = self.root.join(rel);
        fs::create_dir_all(p.parent().unwrap()).unwrap();
        fs::write(p, content).unwrap();
    }

    fn run(&self, extra: &[&str]) -> (i32, String, String) {
        let out = Command::new(env!("CARGO_BIN_EXE_rm-lint"))
            .arg("--root")
            .arg(&self.root)
            .args(extra)
            .output()
            .expect("spawn rm-lint");
        (
            out.status.code().unwrap_or(-1),
            String::from_utf8_lossy(&out.stdout).into_owned(),
            String::from_utf8_lossy(&out.stderr).into_owned(),
        )
    }
}

impl Drop for Sandbox {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

const VIOLATION: &str = "fn f() {\n    let t = Instant::now();\n}\n";

#[test]
fn deliberate_violation_exits_nonzero_with_position() {
    let sb = Sandbox::new("violation");
    sb.write("crates/serve/src/lib.rs", VIOLATION);
    let (code, stdout, stderr) = sb.run(&[]);
    assert_eq!(code, 1, "stdout: {stdout}\nstderr: {stderr}");
    assert!(stderr.contains("error[instant-now-in-serve]"));
    assert!(stderr.contains("crates/serve/src/lib.rs:2:13"), "{stderr}");
    assert!(stdout.contains("1 findings"));
}

#[test]
fn clean_workspace_exits_zero_and_writes_report() {
    let sb = Sandbox::new("clean");
    sb.write("crates/serve/src/lib.rs", "fn ok() {}\n");
    let report = sb.root.join("LINT_report.json");
    let (code, stdout, _) = sb.run(&["--report", report.to_str().unwrap()]);
    assert_eq!(code, 0);
    assert!(stdout.contains("0 findings"));
    let json = fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"tool\": \"rm-lint\""));
    assert!(json.contains("\"files_scanned\": 1"));
}

#[test]
fn allowlisted_finding_passes_and_lands_in_report() {
    let sb = Sandbox::new("allowlisted");
    sb.write("crates/serve/src/lib.rs", VIOLATION);
    sb.write(
        "scripts/lint_allowlist.toml",
        "[[allow]]\nrule = \"instant-now-in-serve\"\npath = \"crates/serve/src/lib.rs\"\nline-pattern = \"Instant::now()\"\nreason = \"fixture\"\n",
    );
    let report = sb.root.join("LINT_report.json");
    let (code, stdout, _) = sb.run(&["--report", report.to_str().unwrap()]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("1 allowlisted"));
    let json = fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"allowlisted\": 1"));
    assert!(json.contains("\"reason\": \"fixture\""));
}

#[test]
fn stale_allowlist_entry_fails_the_run() {
    let sb = Sandbox::new("stale");
    sb.write("crates/serve/src/lib.rs", "fn ok() {}\n");
    sb.write(
        "scripts/lint_allowlist.toml",
        "[[allow]]\nrule = \"instant-now-in-serve\"\npath = \"crates/serve/src/lib.rs\"\nline-pattern = \"Instant::now()\"\nreason = \"code is gone\"\n",
    );
    let (code, stdout, stderr) = sb.run(&[]);
    assert_eq!(code, 1, "{stdout}");
    assert!(stderr.contains("error[stale-allowlist-entry]"));
    assert!(stderr.contains("code is gone"));
}

#[test]
fn empty_allowlist_value_is_a_config_error_not_fail_open() {
    // The grep -vFf gates this replaces treated a blank allowlist line as
    // "match everything" and suppressed every finding. Here it's exit 2.
    let sb = Sandbox::new("empty-value");
    sb.write("crates/serve/src/lib.rs", VIOLATION);
    sb.write(
        "scripts/lint_allowlist.toml",
        "[[allow]]\nrule = \"\"\npath = \"crates/serve/src/lib.rs\"\nreason = \"x\"\n",
    );
    let (code, _, stderr) = sb.run(&[]);
    assert_eq!(code, 2, "{stderr}");
    assert!(stderr.contains("empty value"));
}

#[test]
fn missing_reason_is_a_config_error() {
    let sb = Sandbox::new("no-reason");
    sb.write("crates/serve/src/lib.rs", VIOLATION);
    sb.write(
        "scripts/lint_allowlist.toml",
        "[[allow]]\nrule = \"instant-now-in-serve\"\npath = \"crates/serve/src/lib.rs\"\n",
    );
    let (code, _, stderr) = sb.run(&[]);
    assert_eq!(code, 2);
    assert!(stderr.contains("mandatory `reason`"));
}

#[test]
fn list_rules_prints_all_eight() {
    let out = Command::new(env!("CARGO_BIN_EXE_rm-lint"))
        .arg("--list-rules")
        .output()
        .expect("spawn rm-lint");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    for id in [
        "dot-outside-vecops",
        "instant-now-in-serve",
        "lock-join-unwrap-in-serve",
        "nondeterministic-iteration",
        "panic-in-library",
        "float-accum-outside-vecops",
        "recommender-call-outside-pipeline",
        "unbounded-channel-or-vec-queue-in-serve",
    ] {
        assert!(stdout.contains(id), "missing {id} in:\n{stdout}");
    }
}

#[test]
fn report_is_byte_stable_across_runs() {
    let sb = Sandbox::new("stable");
    sb.write("crates/serve/src/lib.rs", VIOLATION);
    let r1 = sb.root.join("r1.json");
    let r2 = sb.root.join("r2.json");
    sb.run(&["--report", r1.to_str().unwrap()]);
    sb.run(&["--report", r2.to_str().unwrap()]);
    assert_eq!(
        fs::read_to_string(r1).unwrap(),
        fs::read_to_string(r2).unwrap()
    );
}

#[test]
fn unknown_flag_is_usage_error() {
    let out = Command::new(env!("CARGO_BIN_EXE_rm-lint"))
        .arg("--frobnicate")
        .output()
        .expect("spawn rm-lint");
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn explain_known_rule_exits_zero() {
    for rule in ["panic-in-library", "alloc-reachable-from-serve-path"] {
        let out = Command::new(env!("CARGO_BIN_EXE_rm-lint"))
            .args(["--explain", rule])
            .output()
            .expect("spawn rm-lint");
        assert_eq!(out.status.code(), Some(0), "rule {rule}");
        let stdout = String::from_utf8_lossy(&out.stdout);
        assert!(stdout.contains(rule), "{stdout}");
        assert!(stdout.contains("why:"), "{stdout}");
    }
}

#[test]
fn explain_unknown_rule_exits_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_rm-lint"))
        .args(["--explain", "no-such-rule"])
        .output()
        .expect("spawn rm-lint");
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("unknown rule"), "{stderr}");
}

#[test]
fn callgraph_report_is_byte_stable_across_runs() {
    let sb = Sandbox::new("cg-stable");
    sb.write(
        "crates/serve/src/engine.rs",
        "pub fn serve_entry() { helper(); }\npub fn helper() { let mut v = Vec::new(); v.push(1); }\n",
    );
    sb.write(
        "scripts/lint_allowlist.toml",
        "[[root]]\npattern = \"rm_serve::engine::serve_entry\"\nreason = \"fixture\"\n",
    );
    let r1 = sb.root.join("c1.json");
    let r2 = sb.root.join("c2.json");
    sb.run(&["--callgraph", "--callgraph-report", r1.to_str().unwrap()]);
    sb.run(&["--callgraph", "--callgraph-report", r2.to_str().unwrap()]);
    let json = fs::read_to_string(&r1).unwrap();
    assert_eq!(json, fs::read_to_string(r2).unwrap());
    assert!(json.contains("\"tool\": \"rm-lint-callgraph\""), "{json}");
    assert!(json.contains("alloc-reachable-from-serve-path"), "{json}");
}

/// The committed fixture: an unknown call inside the closure is a
/// finding (exit 1 with a chain), the one outside is only counted.
#[test]
fn unresolved_call_inside_closure_fails_closed() {
    let sb = Sandbox::new("fail-closed");
    sb.write(
        "crates/serve/src/engine.rs",
        include_str!("fixtures/unresolved_closure.rs"),
    );
    sb.write(
        "scripts/lint_allowlist.toml",
        "[[root]]\npattern = \"rm_serve::engine::serve_entry\"\nreason = \"fixture\"\n",
    );
    let (code, stdout, stderr) = sb.run(&["--callgraph"]);
    assert_eq!(code, 1, "stdout: {stdout}\nstderr: {stderr}");
    assert!(
        stderr.contains("error[unresolved-call-in-serve-closure]"),
        "{stderr}"
    );
    assert!(stderr.contains("mystery_dependency"), "{stderr}");
    assert!(
        !stderr.contains("another_mystery"),
        "outside-closure call must not be a finding: {stderr}"
    );
    assert!(stdout.contains("2 unresolved (1 in closure)"), "{stdout}");
}

/// Fixture dirs named `fixtures` are skipped by the walker.
#[test]
fn fixture_directories_are_not_scanned() {
    let sb = Sandbox::new("fixtures-skip");
    sb.write("crates/serve/src/lib.rs", "fn ok() {}\n");
    sb.write("crates/serve/tests/fixtures/bad.rs", VIOLATION);
    let (code, stdout, _) = sb.run(&[]);
    assert_eq!(code, 0, "{stdout}");
    assert!(stdout.contains("1 files scanned"));
    assert!(Path::new(&sb.root.join("crates/serve/tests/fixtures/bad.rs")).exists());
}
