//! Golden tests: fixture files with known violations must produce exactly
//! the expected `(rule, line)` set, and the tricky-clean fixture must
//! produce nothing under any scope.

use rm_lint::engine::lint_source;

const SERVE_FIXTURE: &str = include_str!("fixtures/serve_violations.rs");
const MODEL_FIXTURE: &str = include_str!("fixtures/model_violations.rs");
const TRICKY_FIXTURE: &str = include_str!("fixtures/tricky_clean.rs");

fn rule_lines(path: &str, src: &str) -> Vec<(String, u32)> {
    lint_source(path, src)
        .into_iter()
        .map(|f| (f.rule.to_string(), f.line))
        .collect()
}

#[test]
fn serve_fixture_matches_golden_findings() {
    let mut got = rule_lines("crates/serve/src/fixture.rs", SERVE_FIXTURE);
    got.sort();
    let expected: Vec<(String, u32)> = [
        ("dot-outside-vecops", 28),
        ("instant-now-in-serve", 5),
        ("instant-now-in-serve", 38), // cfg(test) is NOT exempt for rule 2
        ("lock-join-unwrap-in-serve", 10),
        ("lock-join-unwrap-in-serve", 15),
        ("panic-in-library", 20),
        ("panic-in-library", 21),
        ("panic-in-library", 22),
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    assert_eq!(got, expected);
}

#[test]
fn model_fixture_matches_golden_findings() {
    let mut got = rule_lines("crates/embed/src/fixture.rs", MODEL_FIXTURE);
    got.sort();
    let expected: Vec<(String, u32)> = [
        ("dot-outside-vecops", 34), // anchored at .zip in a multi-line chain
        ("float-accum-outside-vecops", 27),
        ("float-accum-outside-vecops", 28),
        ("float-accum-outside-vecops", 29),
        ("float-accum-outside-vecops", 36),
        ("nondeterministic-iteration", 8),
        ("nondeterministic-iteration", 11),
        ("nondeterministic-iteration", 13),
        ("nondeterministic-iteration", 22),
    ]
    .into_iter()
    .map(|(r, l)| (r.to_string(), l))
    .collect();
    assert_eq!(got, expected);
}

#[test]
fn findings_carry_file_line_col_and_source_line() {
    let f = lint_source("crates/serve/src/fixture.rs", SERVE_FIXTURE);
    let instant = f
        .iter()
        .find(|f| f.rule == "instant-now-in-serve" && f.line == 5)
        .expect("instant finding");
    assert!(instant.col > 1);
    assert!(instant.source_line.contains("Instant::now()"));
    let rendered = instant.to_string();
    assert!(rendered.contains("crates/serve/src/fixture.rs:5:"));
    assert!(rendered.contains("error[instant-now-in-serve]"));
}

#[test]
fn tricky_fixture_is_clean_under_every_scope() {
    for path in [
        "crates/serve/src/fixture.rs",
        "crates/embed/src/fixture.rs",
        "crates/core/src/fixture.rs",
        "crates/sparse/src/fixture.rs",
    ] {
        let got = rule_lines(path, TRICKY_FIXTURE);
        assert!(got.is_empty(), "false positives as {path}: {got:?}");
    }
}

#[test]
fn serve_cfg_test_exemptions_differ_by_rule() {
    let f = lint_source("crates/serve/src/fixture.rs", SERVE_FIXTURE);
    // The cfg(test) mod contains a lock().unwrap() and a panic! that must
    // be exempt, and an Instant::now() that must not be.
    assert!(!f
        .iter()
        .any(|f| f.rule == "lock-join-unwrap-in-serve" && f.line > 30));
    assert!(!f
        .iter()
        .any(|f| f.rule == "panic-in-library" && f.line > 30));
    assert!(f
        .iter()
        .any(|f| f.rule == "instant-now-in-serve" && f.line > 30));
}
