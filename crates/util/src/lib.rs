//! Shared plumbing for the `reading-machine` workspace.
//!
//! This crate collects the small, dependency-free building blocks every other
//! crate needs:
//!
//! * [`rng`] — seeded, splittable random-number generation so that every
//!   stochastic stage of the pipeline is reproducible from a single `u64`;
//! * [`clock`] — a monotonic clock abstraction (real and fake), request
//!   deadlines, and deterministic retry backoff, used by the serving
//!   layer's fault-tolerance machinery;
//! * [`sample`] — discrete sampling machinery (Walker alias tables, Zipf and
//!   log-normal samplers) used by the synthetic data generators and by the
//!   WARP negative sampler;
//! * [`stats`] — descriptive statistics (quantiles, empirical CDFs, Shannon
//!   entropy) used both by the genre-aggregation pipeline and by the
//!   experiment harness;
//! * [`topk`] — deterministic top-k selection of scored items, the common
//!   last step of every recommender;
//! * [`report`] — minimal ASCII-table and CSV rendering for experiment
//!   output, so the benchmark harness has no external formatting
//!   dependencies;
//! * [`trace`] — a bounded, structured span/event log (JSONL drain,
//!   deterministic under a fake clock) the serving and training
//!   pipelines use for observability;
//! * [`error`] — [`RecError`], the single error enum every fallible
//!   public API in the workspace returns.

pub mod clock;
pub mod error;
pub mod report;
pub mod rng;
pub mod sample;
pub mod stats;
pub mod topk;
pub mod trace;

pub use clock::{Backoff, Clock, Deadline, FakeClock, MonotonicClock};
pub use error::RecError;
pub use rng::SeedableStdRng;
pub use topk::TopK;
pub use trace::{TraceEvent, Tracer};
