//! Deterministic top-k selection of scored items.
//!
//! Every recommender ends with "return the k highest-scored unseen books",
//! over catalogues of a few thousand items and k ≈ 20–50. A bounded binary
//! min-heap gives O(n log k) with no allocation beyond the k-slot buffer.
//! Ties are broken toward the *lower* item index so results are fully
//! deterministic regardless of iteration order quirks.

use std::cmp::Ordering;

/// One scored candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scored {
    /// Item identifier (recommenders use dense item indices).
    pub item: u32,
    /// Score; higher is better. NaN scores are skipped by
    /// [`TopK::push`] in every build profile, and the heap ordering is
    /// total ([`f32::total_cmp`]) so a NaN reaching the comparator can
    /// never panic a serving thread.
    pub score: f32,
}

impl Scored {
    /// Ordering used by the heap: primarily by score, ties by *reversed*
    /// item index so that the "smaller index wins" rule holds for equal
    /// scores.
    ///
    /// Scores compare with [`f32::total_cmp`], which is total over every
    /// bit pattern — `push` filters NaN, but a serving path must not be
    /// able to panic on one slipping through in a release build.
    fn cmp_key(&self, other: &Self) -> Ordering {
        self.score
            .total_cmp(&other.score)
            .then(other.item.cmp(&self.item))
    }
}

/// Bounded selector of the `k` highest-scored items.
#[derive(Debug, Clone)]
pub struct TopK {
    k: usize,
    /// Min-heap on (score, Reverse(item)): `heap[0]` is the current worst
    /// kept element.
    heap: Vec<Scored>,
}

impl TopK {
    /// Creates a selector that keeps the best `k` items.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k requires k >= 1");
        Self {
            k,
            heap: Vec::with_capacity(k),
        }
    }

    /// Capacity `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of items currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no item has been offered yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Offers a candidate. NaN scores are dropped: a recommender that
    /// divides by a zero norm must degrade a candidate, not kill serving.
    #[inline]
    pub fn push(&mut self, item: u32, score: f32) {
        if score.is_nan() {
            return;
        }
        let cand = Scored { item, score };
        if self.heap.len() < self.k {
            self.heap.push(cand);
            self.sift_up(self.heap.len() - 1);
        } else if cand.cmp_key(&self.heap[0]) == Ordering::Greater {
            self.heap[0] = cand;
            self.sift_down(0);
        }
    }

    /// The score a candidate must beat to enter a full selector; `None`
    /// while the selector still has room.
    #[must_use]
    pub fn threshold(&self) -> Option<f32> {
        (self.heap.len() == self.k).then(|| self.heap[0].score)
    }

    /// Consumes the selector, returning items sorted best-first
    /// (descending score, ascending item index on ties).
    #[must_use]
    pub fn into_sorted(mut self) -> Vec<Scored> {
        // Unstable sort: `cmp_key` is total and no two entries share an
        // item index, so stability buys nothing — and the unstable sort
        // does not allocate, which the zero-alloc scoring path relies on.
        self.heap.sort_unstable_by(|a, b| b.cmp_key(a));
        self.heap
    }

    /// Convenience: best-first item indices only.
    #[must_use]
    pub fn into_items(self) -> Vec<u32> {
        self.into_sorted().into_iter().map(|s| s.item).collect()
    }

    /// Re-arms the selector for a new `k`, keeping the heap's allocation —
    /// the reuse hook of the zero-alloc scoring path.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn reset(&mut self, k: usize) {
        assert!(k > 0, "top-k requires k >= 1");
        self.k = k;
        self.heap.clear();
        // With the heap empty, this guarantees capacity >= k: it may grow
        // the buffer on the first reuse with a larger k, and is a no-op
        // (allocation-free) afterwards.
        self.heap.reserve(k);
    }

    /// Drains the selection into `out` (cleared first) best-first, leaving
    /// the selector empty but its allocation intact. Allocation-free once
    /// `out` has capacity `k`.
    pub fn drain_sorted_into(&mut self, out: &mut Vec<u32>) {
        out.clear();
        self.heap.sort_unstable_by(|a, b| b.cmp_key(a));
        out.extend(self.heap.iter().map(|s| s.item));
        self.heap.clear();
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.heap[i].cmp_key(&self.heap[parent]) == Ordering::Less {
                self.heap.swap(i, parent);
                i = parent;
            } else {
                break;
            }
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        let n = self.heap.len();
        loop {
            let l = 2 * i + 1;
            let r = l + 1;
            let mut smallest = i;
            if l < n && self.heap[l].cmp_key(&self.heap[smallest]) == Ordering::Less {
                smallest = l;
            }
            if r < n && self.heap[r].cmp_key(&self.heap[smallest]) == Ordering::Less {
                smallest = r;
            }
            if smallest == i {
                break;
            }
            self.heap.swap(i, smallest);
            i = smallest;
        }
    }
}

/// Selects the top-`k` of an iterator of `(item, score)` pairs, best-first.
#[must_use]
pub fn top_k_of(iter: impl IntoIterator<Item = (u32, f32)>, k: usize) -> Vec<Scored> {
    let mut sel = TopK::new(k);
    for (item, score) in iter {
        sel.push(item, score);
    }
    sel.into_sorted()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn keeps_best_k() {
        let scored = top_k_of((0..100).map(|i| (i, i as f32)), 3);
        let items: Vec<u32> = scored.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![99, 98, 97]);
    }

    #[test]
    fn fewer_than_k_returns_all_sorted() {
        let scored = top_k_of([(4, 0.5), (2, 0.9)], 10);
        let items: Vec<u32> = scored.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![2, 4]);
    }

    #[test]
    fn ties_break_by_lower_index() {
        let scored = top_k_of([(5, 1.0), (1, 1.0), (3, 1.0)], 2);
        let items: Vec<u32> = scored.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![1, 3]);
    }

    #[test]
    fn threshold_reports_current_floor() {
        let mut sel = TopK::new(2);
        assert_eq!(sel.threshold(), None);
        sel.push(0, 1.0);
        assert_eq!(sel.threshold(), None);
        sel.push(1, 2.0);
        assert_eq!(sel.threshold(), Some(1.0));
        sel.push(2, 3.0);
        assert_eq!(sel.threshold(), Some(2.0));
    }

    #[test]
    fn negative_scores_handled() {
        let scored = top_k_of([(0, -3.0), (1, -1.0), (2, -2.0)], 2);
        let items: Vec<u32> = scored.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "k >= 1")]
    fn zero_k_panics() {
        let _ = TopK::new(0);
    }

    #[test]
    fn nan_scores_are_skipped_not_fatal() {
        // NaN offers are dropped whether the selector is filling or full,
        // and never displace a real candidate.
        let scored = top_k_of(
            [
                (0, f32::NAN),
                (1, 1.0),
                (2, f32::NAN),
                (3, 2.0),
                (4, f32::NAN),
            ],
            2,
        );
        let items: Vec<u32> = scored.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![3, 1]);
    }

    #[test]
    fn infinities_order_correctly() {
        let scored = top_k_of(
            [
                (0, f32::NEG_INFINITY),
                (1, 0.0),
                (2, f32::INFINITY),
                (3, -1.0),
            ],
            3,
        );
        let items: Vec<u32> = scored.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![2, 1, 3]);
        // -inf still wins a selector with room.
        let lone = top_k_of([(7, f32::NEG_INFINITY)], 2);
        assert_eq!(lone.len(), 1);
        assert_eq!(lone[0].item, 7);
    }

    #[test]
    fn mixed_nan_inf_churn_is_total() {
        // Release-build regression guard for the old partial_cmp panic:
        // interleave NaN and ±inf through enough pushes to exercise both
        // sift directions.
        let mut sel = TopK::new(4);
        for i in 0..64u32 {
            let score = match i % 4 {
                0 => f32::NAN,
                1 => f32::INFINITY,
                2 => f32::NEG_INFINITY,
                _ => (i as f32).sin(),
            };
            sel.push(i, score);
        }
        let got = sel.into_sorted();
        assert_eq!(got.len(), 4);
        assert!(got.iter().all(|s| !s.score.is_nan()));
        for w in got.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn reset_and_drain_reuse_allocations() {
        let mut sel = TopK::new(8);
        let mut out = Vec::with_capacity(8);
        for round in 0..3u32 {
            sel.reset(3);
            for i in 0..50u32 {
                sel.push(i, f64::from((i * 7 + round) % 13) as f32);
            }
            sel.drain_sorted_into(&mut out);
            assert_eq!(out.len(), 3);
            assert!(sel.is_empty());
        }
        // Pointer stability across a full reset+refill cycle proves the
        // output buffer is reused, not reallocated.
        let out_ptr = out.as_ptr();
        sel.reset(3);
        for i in 0..50u32 {
            sel.push(i, i as f32);
        }
        sel.drain_sorted_into(&mut out);
        assert_eq!(out.as_ptr(), out_ptr, "out buffer must be reused");
        assert_eq!(out, vec![49, 48, 47]);
    }

    #[test]
    fn drain_matches_into_sorted() {
        let pairs = [(5u32, 1.0f32), (1, 3.0), (9, 2.0), (4, 3.0)];
        let mut sel = TopK::new(3);
        let mut from_drain = Vec::new();
        for (i, s) in pairs {
            sel.push(i, s);
        }
        sel.drain_sorted_into(&mut from_drain);
        let from_sorted: Vec<u32> = top_k_of(pairs, 3).into_iter().map(|s| s.item).collect();
        assert_eq!(from_drain, from_sorted);
    }

    proptest! {
        #[test]
        fn matches_full_sort(scores in proptest::collection::vec(-1000i32..1000, 1..200), k in 1usize..30) {
            let pairs: Vec<(u32, f32)> = scores.iter().enumerate()
                .map(|(i, &s)| (i as u32, s as f32)).collect();
            let got: Vec<u32> = top_k_of(pairs.iter().copied(), k)
                .into_iter().map(|s| s.item).collect();

            let mut all = pairs;
            all.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
            all.truncate(k);
            let want: Vec<u32> = all.into_iter().map(|(i, _)| i).collect();
            prop_assert_eq!(got, want);
        }

        #[test]
        fn result_is_sorted_desc(scores in proptest::collection::vec(-1.0f32..1.0, 1..100)) {
            let got = top_k_of(scores.iter().enumerate().map(|(i, &s)| (i as u32, s)), 10);
            for w in got.windows(2) {
                prop_assert!(w[0].score >= w[1].score);
            }
        }
    }
}
