//! The workspace-wide error type.
//!
//! Fallible public APIs across the workspace — registry loads, engine
//! construction, config validation — used to return an ad-hoc mix of
//! `io::Error`, `String`, and per-crate enums. [`RecError`] replaces
//! them with one dependency-free enum whose variants name the failure
//! *class* an operator acts on: an I/O problem, a corrupt artifact, an
//! expired deadline, an unavailable model slot, or an invalid
//! configuration. The variant carries the human-readable detail;
//! [`std::error::Error::source`] chains the underlying `io::Error`
//! where one exists.

use std::fmt;
use std::io;

/// One error type for every fallible public API in the workspace.
#[derive(Debug)]
pub enum RecError {
    /// An underlying I/O operation failed (file missing, permission,
    /// lock contention, …). The original error is preserved as
    /// [`std::error::Error::source`].
    Io(io::Error),
    /// On-disk data was read but failed validation: a bad manifest, a
    /// checksum mismatch, a truncated artifact.
    Corrupt(String),
    /// A time budget expired before the operation completed.
    Deadline(String),
    /// A model slot is degraded or otherwise unable to serve.
    SlotUnavailable(String),
    /// A configuration value failed validation.
    Config(String),
    /// The request was rejected by admission control before any model
    /// ran: the queue was full, the deadline budget was hopeless, or a
    /// CoDel-style delay threshold shed it under sustained pressure.
    Shed(String),
}

impl fmt::Display for RecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Io(e) => write!(f, "i/o error: {e}"),
            Self::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            Self::Deadline(msg) => write!(f, "deadline exceeded: {msg}"),
            Self::SlotUnavailable(msg) => write!(f, "slot unavailable: {msg}"),
            Self::Config(msg) => write!(f, "invalid config: {msg}"),
            Self::Shed(msg) => write!(f, "request shed: {msg}"),
        }
    }
}

impl std::error::Error for RecError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Self::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RecError {
    fn from(e: io::Error) -> Self {
        Self::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error;

    #[test]
    fn display_names_the_failure_class() {
        let cases = [
            (
                RecError::Io(io::Error::new(io::ErrorKind::NotFound, "gone")),
                "i/o error: gone",
            ),
            (
                RecError::Corrupt("bad header".into()),
                "corrupt data: bad header",
            ),
            (RecError::Deadline("10ms".into()), "deadline exceeded: 10ms"),
            (
                RecError::SlotUnavailable("bpr degraded".into()),
                "slot unavailable: bpr degraded",
            ),
            (
                RecError::Config("workers must be >= 1".into()),
                "invalid config: workers must be >= 1",
            ),
            (
                RecError::Shed("queue full".into()),
                "request shed: queue full",
            ),
        ];
        for (err, want) in cases {
            assert_eq!(err.to_string(), want);
        }
    }

    #[test]
    fn io_variant_chains_its_source() {
        let err = RecError::from(io::Error::new(io::ErrorKind::PermissionDenied, "nope"));
        let source = err.source().expect("Io chains a source");
        assert!(source.to_string().contains("nope"));
        assert!(RecError::Config("x".into()).source().is_none());
    }
}
