//! Descriptive statistics used across the pipeline.
//!
//! Three consumers drive the contents: the genre-aggregation step of the
//! dataset pipeline (Shannon [`entropy`]), the Fig. 1 reproduction
//! (empirical CDFs via [`Ecdf`]), and the synthetic-data calibration tests
//! (means / medians / [`quantile`]s of count distributions).

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance; `0.0` for fewer than two values.
#[must_use]
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Quantile `q ∈ [0, 1]` with linear interpolation between order statistics
/// (the "R-7" definition used by NumPy's default).
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range: {q}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending"
    );
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median via [`quantile`] after sorting a copy.
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    quantile(&v, 0.5)
}

/// Shannon entropy (nats) of a count histogram. Zero counts contribute
/// nothing; an empty or all-zero histogram has entropy zero.
#[must_use]
pub fn entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.ln()
        })
        .sum()
}

/// An empirical cumulative distribution function over integer-valued
/// observations (e.g. readings per user).
///
/// Stores the sorted distinct values with cumulative probabilities;
/// [`Ecdf::points`] yields exactly the series a CDF plot needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    values: Vec<u64>,
    cumulative: Vec<f64>,
    n: usize,
}

impl Ecdf {
    /// Builds the ECDF from raw observations.
    #[must_use]
    pub fn from_observations(obs: &[u64]) -> Self {
        let mut sorted = obs.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut values = Vec::new();
        let mut cumulative = Vec::new();
        let mut seen = 0usize;
        let mut i = 0usize;
        while i < n {
            let v = sorted[i];
            let mut j = i;
            while j < n && sorted[j] == v {
                j += 1;
            }
            seen += j - i;
            values.push(v);
            cumulative.push(seen as f64 / n as f64);
            i = j;
        }
        Self {
            values,
            cumulative,
            n,
        }
    }

    /// Number of observations the ECDF was built from.
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.n
    }

    /// P(X <= x).
    #[must_use]
    pub fn eval(&self, x: u64) -> f64 {
        match self.values.binary_search(&x) {
            Ok(i) => self.cumulative[i],
            Err(0) => 0.0,
            Err(i) => self.cumulative[i - 1],
        }
    }

    /// The (value, cumulative-probability) step points.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.values
            .iter()
            .copied()
            .zip(self.cumulative.iter().copied())
    }

    /// Largest observed value (None when empty).
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.values.last().copied()
    }

    /// Smallest `x` with `P(X <= x) >= q` (i.e. the `q`-quantile of the
    /// step function).
    ///
    /// # Panics
    ///
    /// Panics if the ECDF is empty or `q` is outside `(0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(!self.values.is_empty(), "quantile of empty ECDF");
        assert!(q > 0.0 && q <= 1.0, "quantile level out of range: {q}");
        let idx = self
            .cumulative
            .partition_point(|&c| c < q)
            .min(self.values.len() - 1);
        self.values[idx]
    }
}

/// A mergeable latency histogram with logarithmic buckets.
///
/// Values (e.g. nanoseconds) land in quarter-octave buckets — bucket
/// boundaries grow by `2^(1/4)` — so quantile estimates carry at most
/// ~19 % relative error while the whole histogram stays 256 counters,
/// cheap enough to sit on every request path. Exact `min`/`max`/`sum`
/// are tracked on the side, and [`Histogram::merge`] combines per-worker
/// histograms without loss (bucket counts simply add).
///
/// The serving engine records request latencies here and reports
/// p50/p95/p99 via [`Histogram::quantile`].
///
/// Observations so large that their bucket's upper bound saturates at
/// `u64::MAX` (values ≥ 2⁶²) are additionally counted in an explicit
/// overflow counter ([`Histogram::overflow`]): quantile estimates that
/// land in those buckets carry unbounded relative error, and exporters
/// surface the counter so saturation is visible instead of silent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
    overflow: u64,
}

/// Quarter-octave buckets spanning all of `u64`: 4 per power of two.
const HIST_BUCKETS: usize = 256;

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: vec![0; HIST_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            overflow: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value <= 1 {
            return 0;
        }
        // floor(log2(v) * 4): exponent gives the octave, the top bits of
        // the mantissa pick the quarter within it.
        let e = value.ilog2();
        let quarter = if e >= 2 {
            // The two bits just below the leading one.
            ((value >> (e - 2)) & 0b11) as u32
        } else {
            // e == 1: values 2 and 3 fall in quarters 0 and 2.
            ((value & 1) * 2) as u32
        };
        ((e * 4 + quarter) as usize).min(HIST_BUCKETS - 1)
    }

    /// Upper bound of bucket `i` — the representative value reported for
    /// samples that landed there.
    fn bucket_upper(i: usize) -> u64 {
        let e = (i / 4) as u32;
        let quarter = (i % 4) as u64;
        if e >= 62 {
            return u64::MAX;
        }
        // 2^e * (1 + (quarter+1)/4), exact in integers.
        (1u64 << e) + ((quarter + 1) << e) / 4
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.record_n(value, 1);
    }

    /// Records `n` identical observations in O(1) — how batched request
    /// paths account one amortised per-request latency for a whole chunk.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        let bucket = Self::bucket_of(value);
        if Self::bucket_upper(bucket) == u64::MAX {
            self.overflow += n;
        }
        self.counts[bucket] += n;
        self.total += n;
        self.sum += u128::from(value) * u128::from(n);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Adds every observation of `other` into `self`.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.overflow += other.overflow;
    }

    /// Number of recorded observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Exact sum of every recorded value (u128: `u64::MAX` observations
    /// of `u64::MAX` cannot overflow it).
    #[must_use]
    pub fn sum(&self) -> u128 {
        self.sum
    }

    /// Cumulative bucket counts over the occupied range, as
    /// `(upper_bound, observations ≤ upper_bound)` pairs — exactly the
    /// series a Prometheus-style histogram exposition needs. Empty when
    /// nothing has been recorded; the last entry's count equals
    /// [`Histogram::count`].
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        if self.total == 0 {
            return Vec::new();
        }
        // bucket_of is monotone, so no count lands below bucket_of(min).
        let lo = Self::bucket_of(self.min);
        let hi = Self::bucket_of(self.max);
        let mut cumulative = 0u64;
        (lo..=hi)
            .map(|i| {
                cumulative += self.counts[i];
                (Self::bucket_upper(i), cumulative)
            })
            .collect()
    }

    /// Observations whose bucket's upper bound saturated at `u64::MAX`
    /// (values ≥ 2⁶²): quantiles touching those buckets are unreliable,
    /// so saturation is counted rather than hidden.
    #[must_use]
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact arithmetic mean; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Exact smallest observation; `0` when empty.
    #[must_use]
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact largest observation.
    #[must_use]
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate quantile `q ∈ [0, 1]`: the upper bound of the bucket
    /// holding the `⌈q·n⌉`-th smallest sample, clamped to the exact
    /// observed range. `0` when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile level out of range: {q}");
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Self::bucket_upper(i).clamp(self.min, self.max);
            }
        }
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn median_unsorted_input() {
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median(&[4.0, 1.0]), 2.5);
    }

    #[test]
    fn entropy_uniform_is_log_n() {
        let h = entropy(&[10, 10, 10, 10]);
        assert!((h - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_degenerate_is_zero() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0, 0]), 0.0);
        assert_eq!(entropy(&[42]), 0.0);
    }

    #[test]
    fn entropy_merging_equal_bins_decreases() {
        // Aggregating two equal-mass genres into one strictly reduces
        // entropy — the property the genre pipeline relies on.
        let before = entropy(&[50, 50, 100]);
        let after = entropy(&[100, 100]);
        assert!(after < before);
    }

    #[test]
    fn ecdf_step_behaviour() {
        let e = Ecdf::from_observations(&[1, 1, 2, 5]);
        assert_eq!(e.sample_size(), 4);
        assert_eq!(e.eval(0), 0.0);
        assert_eq!(e.eval(1), 0.5);
        assert_eq!(e.eval(3), 0.75);
        assert_eq!(e.eval(5), 1.0);
        assert_eq!(e.eval(99), 1.0);
        assert_eq!(e.max(), Some(5));
    }

    #[test]
    fn ecdf_quantile_matches_eval() {
        let e = Ecdf::from_observations(&[10, 20, 30, 40, 50]);
        assert_eq!(e.quantile(0.2), 10);
        assert_eq!(e.quantile(0.5), 30);
        assert_eq!(e.quantile(1.0), 50);
    }

    #[test]
    fn histogram_empty_is_inert() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.quantile(0.5), 0);
    }

    #[test]
    fn histogram_single_value_quantiles_are_exact() {
        let mut h = Histogram::new();
        h.record(1_000);
        // Clamping to the observed range makes a single sample exact.
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert_eq!(h.quantile(q), 1_000);
        }
        assert_eq!(h.mean(), 1_000.0);
    }

    #[test]
    fn histogram_quantiles_within_bucket_error() {
        let mut h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        // Quarter-octave buckets: estimate within ~19 % of the true value.
        for (q, truth) in [(0.5, 5_000.0), (0.95, 9_500.0), (0.99, 9_900.0)] {
            let est = h.quantile(q) as f64;
            assert!(
                (est - truth).abs() / truth < 0.2,
                "q{q}: estimated {est}, true {truth}"
            );
        }
        assert_eq!(h.min(), 1);
        assert_eq!(h.max(), 10_000);
        assert!((h.mean() - 5_000.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantiles_are_monotone() {
        let mut h = Histogram::new();
        for v in [3u64, 17, 90, 1_000, 250_000, 1 << 40] {
            for _ in 0..5 {
                h.record(v);
            }
        }
        let qs: Vec<u64> = (0..=20).map(|i| h.quantile(i as f64 / 20.0)).collect();
        assert!(qs.windows(2).all(|w| w[0] <= w[1]), "{qs:?}");
        assert!(qs[0] >= 3 && *qs.last().unwrap() == 1 << 40);
    }

    #[test]
    fn histogram_merge_equals_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut both = Histogram::new();
        for v in 0..500u64 {
            let target = if v % 2 == 0 { &mut a } else { &mut b };
            target.record(v * 37);
            both.record(v * 37);
        }
        a.merge(&b);
        assert_eq!(a, both);
    }

    #[test]
    fn histogram_record_n_equals_repeated_record() {
        let mut bulk = Histogram::new();
        let mut loop_ = Histogram::new();
        bulk.record_n(777, 9);
        bulk.record_n(5, 0); // no-op
        for _ in 0..9 {
            loop_.record(777);
        }
        assert_eq!(bulk, loop_);
    }

    #[test]
    fn histogram_cumulative_buckets_cover_all_counts() {
        let mut h = Histogram::new();
        assert!(h.cumulative_buckets().is_empty());
        for v in [10u64, 10, 500, 64_000, 64_001] {
            h.record(v);
        }
        let buckets = h.cumulative_buckets();
        assert!(!buckets.is_empty());
        // Bounds ascend strictly, counts never decrease.
        assert!(buckets.windows(2).all(|w| w[0].0 < w[1].0));
        assert!(buckets.windows(2).all(|w| w[0].1 <= w[1].1));
        // Every observation is ≤ the last bound; count closes at total.
        assert_eq!(buckets.last().unwrap().1, h.count());
        assert!(buckets.last().unwrap().0 >= h.max());
        assert_eq!(h.sum(), 128_521);
    }

    #[test]
    fn histogram_extremes_do_not_overflow() {
        let mut h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    #[test]
    fn histogram_overflow_counts_saturated_buckets() {
        let mut h = Histogram::new();
        h.record(1_000);
        h.record((1 << 62) - 1); // largest value with a finite bucket bound
        assert_eq!(h.overflow(), 0, "finite-bound buckets never overflow");
        h.record(1 << 62);
        h.record_n(u64::MAX, 3);
        assert_eq!(h.overflow(), 4);
        // Merge accumulates overflow alongside the bucket counts.
        let mut other = Histogram::new();
        other.record(1 << 63);
        h.merge(&other);
        assert_eq!(h.overflow(), 5);
        assert_eq!(h.count(), 7);
    }

    #[test]
    fn ecdf_points_are_monotone() {
        let e = Ecdf::from_observations(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let pts: Vec<_> = e.points().collect();
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
