//! Descriptive statistics used across the pipeline.
//!
//! Three consumers drive the contents: the genre-aggregation step of the
//! dataset pipeline (Shannon [`entropy`]), the Fig. 1 reproduction
//! (empirical CDFs via [`Ecdf`]), and the synthetic-data calibration tests
//! (means / medians / [`quantile`]s of count distributions).

/// Arithmetic mean; `0.0` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Population variance; `0.0` for fewer than two values.
#[must_use]
pub fn variance(values: &[f64]) -> f64 {
    if values.len() < 2 {
        return 0.0;
    }
    let m = mean(values);
    values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64
}

/// Quantile `q ∈ [0, 1]` with linear interpolation between order statistics
/// (the "R-7" definition used by NumPy's default).
///
/// # Panics
///
/// Panics if `values` is empty or `q` is outside `[0, 1]`.
#[must_use]
pub fn quantile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty slice");
    assert!((0.0..=1.0).contains(&q), "quantile level out of range: {q}");
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "input must be sorted ascending"
    );
    let h = (sorted.len() - 1) as f64 * q;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        sorted[lo] + (h - lo as f64) * (sorted[hi] - sorted[lo])
    }
}

/// Median via [`quantile`] after sorting a copy.
#[must_use]
pub fn median(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "median of empty slice");
    let mut v = values.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median input"));
    quantile(&v, 0.5)
}

/// Shannon entropy (nats) of a count histogram. Zero counts contribute
/// nothing; an empty or all-zero histogram has entropy zero.
#[must_use]
pub fn entropy(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    let total = total as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total;
            -p * p.ln()
        })
        .sum()
}

/// An empirical cumulative distribution function over integer-valued
/// observations (e.g. readings per user).
///
/// Stores the sorted distinct values with cumulative probabilities;
/// [`Ecdf::points`] yields exactly the series a CDF plot needs.
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    values: Vec<u64>,
    cumulative: Vec<f64>,
    n: usize,
}

impl Ecdf {
    /// Builds the ECDF from raw observations.
    #[must_use]
    pub fn from_observations(obs: &[u64]) -> Self {
        let mut sorted = obs.to_vec();
        sorted.sort_unstable();
        let n = sorted.len();
        let mut values = Vec::new();
        let mut cumulative = Vec::new();
        let mut seen = 0usize;
        let mut i = 0usize;
        while i < n {
            let v = sorted[i];
            let mut j = i;
            while j < n && sorted[j] == v {
                j += 1;
            }
            seen += j - i;
            values.push(v);
            cumulative.push(seen as f64 / n as f64);
            i = j;
        }
        Self { values, cumulative, n }
    }

    /// Number of observations the ECDF was built from.
    #[must_use]
    pub fn sample_size(&self) -> usize {
        self.n
    }

    /// P(X <= x).
    #[must_use]
    pub fn eval(&self, x: u64) -> f64 {
        match self.values.binary_search(&x) {
            Ok(i) => self.cumulative[i],
            Err(0) => 0.0,
            Err(i) => self.cumulative[i - 1],
        }
    }

    /// The (value, cumulative-probability) step points.
    pub fn points(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.values.iter().copied().zip(self.cumulative.iter().copied())
    }

    /// Largest observed value (None when empty).
    #[must_use]
    pub fn max(&self) -> Option<u64> {
        self.values.last().copied()
    }

    /// Smallest `x` with `P(X <= x) >= q` (i.e. the `q`-quantile of the
    /// step function).
    ///
    /// # Panics
    ///
    /// Panics if the ECDF is empty or `q` is outside `(0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(!self.values.is_empty(), "quantile of empty ECDF");
        assert!(q > 0.0 && q <= 1.0, "quantile level out of range: {q}");
        let idx = self
            .cumulative
            .partition_point(|&c| c < q)
            .min(self.values.len() - 1);
        self.values[idx]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_variance_basics() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert!((variance(&[1.0, 3.0]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn quantile_interpolates() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&v, 0.0), 1.0);
        assert_eq!(quantile(&v, 1.0), 4.0);
        assert!((quantile(&v, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn median_unsorted_input() {
        assert_eq!(median(&[9.0, 1.0, 5.0]), 5.0);
        assert_eq!(median(&[4.0, 1.0]), 2.5);
    }

    #[test]
    fn entropy_uniform_is_log_n() {
        let h = entropy(&[10, 10, 10, 10]);
        assert!((h - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_degenerate_is_zero() {
        assert_eq!(entropy(&[]), 0.0);
        assert_eq!(entropy(&[0, 0]), 0.0);
        assert_eq!(entropy(&[42]), 0.0);
    }

    #[test]
    fn entropy_merging_equal_bins_decreases() {
        // Aggregating two equal-mass genres into one strictly reduces
        // entropy — the property the genre pipeline relies on.
        let before = entropy(&[50, 50, 100]);
        let after = entropy(&[100, 100]);
        assert!(after < before);
    }

    #[test]
    fn ecdf_step_behaviour() {
        let e = Ecdf::from_observations(&[1, 1, 2, 5]);
        assert_eq!(e.sample_size(), 4);
        assert_eq!(e.eval(0), 0.0);
        assert_eq!(e.eval(1), 0.5);
        assert_eq!(e.eval(3), 0.75);
        assert_eq!(e.eval(5), 1.0);
        assert_eq!(e.eval(99), 1.0);
        assert_eq!(e.max(), Some(5));
    }

    #[test]
    fn ecdf_quantile_matches_eval() {
        let e = Ecdf::from_observations(&[10, 20, 30, 40, 50]);
        assert_eq!(e.quantile(0.2), 10);
        assert_eq!(e.quantile(0.5), 30);
        assert_eq!(e.quantile(1.0), 50);
    }

    #[test]
    fn ecdf_points_are_monotone() {
        let e = Ecdf::from_observations(&[3, 1, 4, 1, 5, 9, 2, 6]);
        let pts: Vec<_> = e.points().collect();
        for w in pts.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 < w[1].1);
        }
        assert!((pts.last().unwrap().1 - 1.0).abs() < 1e-12);
    }
}
