//! Structured tracing: a bounded ring-buffer event log with spans.
//!
//! The serving and training pipelines emit [`TraceEvent`]s into a
//! [`Tracer`]: plain events, and span enter/exit pairs whose elapsed
//! time is measured through the [`Clock`] abstraction — so a test run
//! under a [`FakeClock`](crate::clock::FakeClock) produces bit-identical
//! traces, sequence numbers and timings included.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when disabled.** A disabled tracer holds no buffer and
//!    no clock; [`Tracer::event`] returns before invoking the
//!    field-building closure, so neither fields nor strings are ever
//!    allocated, and [`Tracer::span`] hands back an inert guard.
//! 2. **Bounded.** Events live in a ring of fixed capacity; overflow
//!    drops the *oldest* events and counts them ([`Tracer::dropped`])
//!    rather than growing without limit on a hot serving path.
//! 3. **Structured.** Every event carries `key=value` fields
//!    ([`Value`]), not preformatted strings, and drains as JSONL
//!    ([`Tracer::drain_jsonl`]) — one self-describing JSON object per
//!    line, trivially greppable and machine-parseable.

use crate::clock::Clock;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::{Arc, Mutex, PoisonError};
use std::time::Duration;

/// A structured field value. Numeric and boolean variants are `Copy`
/// and allocation-free; `Str` owns its text (built only when the tracer
/// is enabled, thanks to the closure-based recording API).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer (counts, sequence numbers, nanoseconds).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (ratios, scores).
    F64(f64),
    /// Boolean flag.
    Bool(bool),
    /// Owned text (labels, outcomes, error messages).
    Str(String),
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Self::U64(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Self::U64(u64::from(v))
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Self::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Self::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Self::F64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Self::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Self::Str(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Self::Str(v)
    }
}

/// What a [`TraceEvent`] marks: a point event or a span boundary.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// A point-in-time event.
    Event,
    /// A span was entered.
    Enter,
    /// A span was exited; its fields include `span` (the enter event's
    /// sequence number) and `elapsed_ns`.
    Exit,
}

impl Kind {
    /// The JSON value of the `kind` key.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Self::Event => "event",
            Self::Enter => "enter",
            Self::Exit => "exit",
        }
    }
}

/// One recorded trace event.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Monotonically increasing sequence number (never reused, even
    /// across drains or ring overflow).
    pub seq: u64,
    /// Clock reading when the event was recorded.
    pub at: Duration,
    /// Point event or span boundary.
    pub kind: Kind,
    /// Static event name (e.g. `serve_chunk`, `slot_call`).
    pub name: &'static str,
    /// Structured `key=value` payload, in recording order.
    pub fields: Vec<(&'static str, Value)>,
}

impl TraceEvent {
    /// Renders the event as one JSON object (no trailing newline).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96);
        let _ = write!(
            out,
            "{{\"seq\":{},\"at_ns\":{},\"kind\":\"{}\",\"name\":\"{}\"",
            self.seq,
            self.at.as_nanos(),
            self.kind.label(),
            self.name
        );
        if !self.fields.is_empty() {
            out.push_str(",\"fields\":{");
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "\"{k}\":");
                write_json_value(&mut out, v);
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

fn write_json_value(out: &mut String, v: &Value) {
    match v {
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        // Non-finite floats are not valid JSON numbers; quote them.
        Value::F64(f) if f.is_finite() => {
            let _ = write!(out, "{f}");
        }
        Value::F64(f) => {
            let _ = write!(out, "\"{f}\"");
        }
        Value::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        Value::Str(s) => {
            out.push('"');
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\r' => out.push_str("\\r"),
                    '\t' => out.push_str("\\t"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out.push('"');
        }
    }
}

/// Builder the recording closures fill in; only ever constructed when
/// the tracer is enabled.
#[derive(Debug, Default)]
pub struct FieldSet {
    fields: Vec<(&'static str, Value)>,
}

impl FieldSet {
    /// Appends one `key=value` field.
    pub fn push(&mut self, name: &'static str, value: impl Into<Value>) -> &mut Self {
        self.fields.push((name, value.into()));
        self
    }
}

#[derive(Debug)]
struct Ring {
    events: VecDeque<TraceEvent>,
    next_seq: u64,
    dropped: u64,
}

#[derive(Debug)]
struct Enabled {
    clock: Arc<dyn Clock>,
    capacity: usize,
    ring: Mutex<Ring>,
}

/// The event log. Shared across worker threads behind an `Arc`; a
/// disabled tracer is a single `None` and costs one branch per call.
#[derive(Debug)]
pub struct Tracer {
    inner: Option<Enabled>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing and allocates nothing.
    #[must_use]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// A recording tracer holding at most `capacity` events (oldest
    /// dropped first); timestamps read `clock`.
    #[must_use]
    pub fn enabled(capacity: usize, clock: Arc<dyn Clock>) -> Self {
        let capacity = capacity.max(1);
        Self {
            inner: Some(Enabled {
                clock,
                capacity,
                ring: Mutex::new(Ring {
                    events: VecDeque::with_capacity(capacity),
                    next_seq: 0,
                    dropped: 0,
                }),
            }),
        }
    }

    /// True when events are being recorded.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Events currently buffered (not yet drained).
    #[must_use]
    pub fn len(&self) -> usize {
        self.inner.as_ref().map_or(0, |e| {
            e.ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .events
                .len()
        })
    }

    /// True when no events are buffered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped so far because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |e| {
            e.ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .dropped
        })
    }

    /// Records a point event. The closure builds the fields and runs
    /// only when the tracer is enabled — a disabled tracer returns
    /// before any allocation.
    pub fn event(&self, name: &'static str, build: impl FnOnce(&mut FieldSet)) {
        let Some(enabled) = &self.inner else {
            return;
        };
        let at = enabled.clock.now();
        let mut fs = FieldSet::default();
        build(&mut fs);
        Self::push(enabled, at, Kind::Event, name, fs.fields);
    }

    /// Opens a span: records an `enter` event now and an `exit` event —
    /// carrying the enter's sequence number and the elapsed clock time —
    /// when the returned guard is finished or dropped. Inert (and
    /// allocation-free) on a disabled tracer.
    #[must_use]
    pub fn span(&self, name: &'static str) -> Span<'_> {
        let Some(enabled) = &self.inner else {
            return Span {
                tracer: self,
                name,
                enter_seq: 0,
                started: Duration::ZERO,
                finished: true,
            };
        };
        let started = enabled.clock.now();
        let enter_seq = Self::push(enabled, started, Kind::Enter, name, Vec::new());
        Span {
            tracer: self,
            name,
            enter_seq,
            started,
            finished: false,
        }
    }

    /// Takes every buffered event out, oldest first. Sequence numbers
    /// keep counting across drains.
    #[must_use]
    pub fn drain(&self) -> Vec<TraceEvent> {
        self.inner.as_ref().map_or_else(Vec::new, |e| {
            e.ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .events
                .drain(..)
                .collect()
        })
    }

    /// Drains the buffer as JSONL: one JSON object per line, trailing
    /// newline included (empty string when nothing was recorded).
    #[must_use]
    pub fn drain_jsonl(&self) -> String {
        let mut out = String::new();
        for event in self.drain() {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }

    fn push(
        enabled: &Enabled,
        at: Duration,
        kind: Kind,
        name: &'static str,
        fields: Vec<(&'static str, Value)>,
    ) -> u64 {
        let mut ring = enabled.ring.lock().unwrap_or_else(PoisonError::into_inner);
        let seq = ring.next_seq;
        ring.next_seq += 1;
        if ring.events.len() == enabled.capacity {
            ring.events.pop_front();
            ring.dropped += 1;
        }
        ring.events.push_back(TraceEvent {
            seq,
            at,
            kind,
            name,
            fields,
        });
        seq
    }
}

/// An open span; exiting (via [`Span::finish`] or drop) records the
/// matching `exit` event with the elapsed clock time.
#[derive(Debug)]
pub struct Span<'a> {
    tracer: &'a Tracer,
    name: &'static str,
    enter_seq: u64,
    started: Duration,
    finished: bool,
}

impl Span<'_> {
    /// Sequence number of the span's `enter` event (0 when disabled).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.enter_seq
    }

    /// Closes the span, attaching extra fields to the `exit` event.
    pub fn finish(mut self, build: impl FnOnce(&mut FieldSet)) {
        self.exit(build);
    }

    fn exit(&mut self, build: impl FnOnce(&mut FieldSet)) {
        if self.finished {
            return;
        }
        self.finished = true;
        let Some(enabled) = &self.tracer.inner else {
            return;
        };
        let now = enabled.clock.now();
        let mut fs = FieldSet::default();
        fs.push("span", self.enter_seq);
        fs.push(
            "elapsed_ns",
            now.saturating_sub(self.started).as_nanos() as u64,
        );
        build(&mut fs);
        Tracer::push(enabled, now, Kind::Exit, self.name, fs.fields);
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        self.exit(|_| {});
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::FakeClock;

    fn fake_tracer(capacity: usize) -> (Arc<FakeClock>, Tracer) {
        let clock = Arc::new(FakeClock::new());
        let tracer = Tracer::enabled(capacity, Arc::clone(&clock) as Arc<dyn Clock>);
        (clock, tracer)
    }

    #[test]
    fn events_carry_seq_time_and_fields() {
        let (clock, tracer) = fake_tracer(16);
        tracer.event("first", |f| {
            f.push("n", 3u64);
        });
        clock.advance(Duration::from_nanos(250));
        tracer.event("second", |f| {
            f.push("label", "bpr").push("ok", true).push("score", 0.5);
        });
        let events = tracer.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].seq, 0);
        assert_eq!(events[0].at, Duration::ZERO);
        assert_eq!(events[0].fields, vec![("n", Value::U64(3))]);
        assert_eq!(events[1].seq, 1);
        assert_eq!(events[1].at, Duration::from_nanos(250));
        assert_eq!(events[1].name, "second");
    }

    #[test]
    fn span_exit_links_enter_and_measures_elapsed() {
        let (clock, tracer) = fake_tracer(16);
        let span = tracer.span("work");
        clock.advance(Duration::from_nanos(700));
        span.finish(|f| {
            f.push("items", 4u64);
        });
        let events = tracer.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].kind, Kind::Enter);
        assert_eq!(events[1].kind, Kind::Exit);
        assert_eq!(
            events[1].fields,
            vec![
                ("span", Value::U64(events[0].seq)),
                ("elapsed_ns", Value::U64(700)),
                ("items", Value::U64(4)),
            ]
        );
    }

    #[test]
    fn dropped_span_still_exits() {
        let (clock, tracer) = fake_tracer(16);
        {
            let _span = tracer.span("implicit");
            clock.advance(Duration::from_nanos(40));
        }
        let events = tracer.drain();
        assert_eq!(events.len(), 2);
        assert_eq!(events[1].kind, Kind::Exit);
        assert_eq!(events[1].fields[1], ("elapsed_ns", Value::U64(40)));
    }

    #[test]
    fn ring_drops_oldest_and_counts() {
        let (_clock, tracer) = fake_tracer(3);
        for _ in 0..5 {
            tracer.event("e", |_| {});
        }
        assert_eq!(tracer.dropped(), 2);
        let events = tracer.drain();
        let seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
        // Oldest (0, 1) dropped; survivors keep their original seqs.
        assert_eq!(seqs, vec![2, 3, 4]);
        // Seq numbering continues after a drain.
        tracer.event("later", |_| {});
        assert_eq!(tracer.drain()[0].seq, 5);
    }

    #[test]
    fn jsonl_output_is_wellformed_and_escaped() {
        let (_clock, tracer) = fake_tracer(8);
        tracer.event("tricky", |f| {
            f.push("msg", "say \"hi\"\nback\\slash\ttab");
            f.push("nan", f64::NAN);
            f.push("neg", -3i64);
        });
        let jsonl = tracer.drain_jsonl();
        let line = jsonl.trim_end();
        assert!(line.starts_with("{\"seq\":0,\"at_ns\":0,"), "{line}");
        assert!(line.contains("\"kind\":\"event\""), "{line}");
        assert!(
            line.contains("say \\\"hi\\\"\\nback\\\\slash\\ttab"),
            "{line}"
        );
        // Non-finite floats must not produce bare NaN tokens.
        assert!(line.contains("\"nan\":\"NaN\""), "{line}");
        assert!(line.contains("\"neg\":-3"), "{line}");
        assert_eq!(line.matches('{').count(), line.matches('}').count());
        assert_eq!(jsonl.lines().count(), 1);
    }

    #[test]
    fn identical_runs_trace_identically_under_fake_clock() {
        let run = || {
            let (clock, tracer) = fake_tracer(32);
            for i in 0..4u64 {
                let span = tracer.span("step");
                clock.advance(Duration::from_micros(10 + i));
                span.finish(|f| {
                    f.push("i", i);
                });
            }
            tracer.drain_jsonl()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn disabled_tracer_records_and_allocates_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut built = 0u64;
        for _ in 0..1000 {
            // The closure must never run: field construction (and its
            // allocations) is what "zero cost when disabled" buys.
            tracer.event("e", |f| {
                built += 1;
                f.push("expensive", "x".repeat(1 << 20));
            });
            let span = tracer.span("s");
            span.finish(|_| {
                built += 1;
            });
        }
        assert_eq!(built, 0, "field closures ran on a disabled tracer");
        assert!(tracer.is_empty());
        assert_eq!(tracer.dropped(), 0);
        assert_eq!(tracer.drain_jsonl(), "");
    }

    #[test]
    fn disabled_path_is_cheap() {
        // Not a benchmark — just a sanity bound: a million disabled
        // event+span pairs are branch-only and must finish instantly
        // relative to the multi-second budget even in debug builds.
        let tracer = Tracer::disabled();
        let t0 = std::time::Instant::now();
        for _ in 0..1_000_000 {
            tracer.event("e", |f| {
                f.push("k", 1u64);
            });
            drop(tracer.span("s"));
        }
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "disabled tracing too slow: {:?}",
            t0.elapsed()
        );
    }
}
