//! Minimal report rendering: aligned ASCII tables and CSV.
//!
//! The `repro-*` binaries print the same rows the paper's tables report and
//! additionally write machine-readable CSV next to them; this module is the
//! only formatting dependency they need.

use std::fmt::Write as _;

/// A simple column-aligned table with a header row.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> Self {
        Self {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row; its length must match the header.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, row: I) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True when the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with space-padded columns and a separator rule.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, (cell, w)) in cells.iter().zip(&widths).enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{cell:<w$}");
            }
            // Trim trailing padding.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule_len = widths.iter().sum::<usize>() + 2 * (ncols.saturating_sub(1));
        out.push_str(&"-".repeat(rule_len));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }

    /// Renders the table as RFC-4180-ish CSV (quotes cells containing
    /// commas, quotes, or newlines).
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&csv_escape(cell));
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Escapes one CSV cell.
#[must_use]
fn csv_escape(cell: &str) -> String {
    if cell.contains([',', '"', '\n', '\r']) {
        let mut s = String::with_capacity(cell.len() + 2);
        s.push('"');
        for c in cell.chars() {
            if c == '"' {
                s.push('"');
            }
            s.push(c);
        }
        s.push('"');
        s
    } else {
        cell.to_owned()
    }
}

/// Formats a float with `digits` decimal places (the paper's tables use 2).
#[must_use]
pub fn fmt_f64(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new(["name", "URR"]);
        t.push_row(["Random Items", "0.07"]);
        t.push_row(["BPR", "0.26"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[0], "name          URR");
        assert!(lines[1].chars().all(|c| c == '-'));
        assert_eq!(lines[2], "Random Items  0.07");
        assert_eq!(lines[3], "BPR           0.26");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = Table::new(["a", "b"]);
        t.push_row(["pl,ain", "qu\"ote"]);
        let csv = t.to_csv();
        assert_eq!(csv, "a,b\n\"pl,ain\",\"qu\"\"ote\"\n");
    }

    #[test]
    fn csv_plain_cells_unquoted() {
        let mut t = Table::new(["x"]);
        t.push_row(["simple"]);
        assert_eq!(t.to_csv(), "x\nsimple\n");
    }

    #[test]
    fn fmt_f64_matches_paper_precision() {
        assert_eq!(fmt_f64(0.256, 2), "0.26");
        assert_eq!(fmt_f64(30.554, 2), "30.55");
        assert_eq!(fmt_f64(1.0, 0), "1");
    }

    #[test]
    fn len_and_empty() {
        let mut t = Table::new(["x"]);
        assert!(t.is_empty());
        t.push_row(["1"]);
        assert_eq!(t.len(), 1);
    }
}
