//! Discrete and continuous sampling machinery.
//!
//! The synthetic data generators draw millions of events from skewed
//! categorical distributions (book popularity, genre preference), so the
//! workhorse here is [`AliasTable`] — Walker's alias method, O(n) setup and
//! O(1) per draw. [`ZipfWeights`] produces the power-law popularity profiles
//! the paper's dataset exhibits, and [`LogNormal`] models per-user activity
//! (heavy-tailed reading counts). All samplers take the RNG by `&mut` so
//! callers control seeding.

use rand::{Rng, RngExt};

/// Walker alias table for O(1) sampling from a fixed categorical
/// distribution.
///
/// Construction normalises the weights; zero weights are allowed (those
/// indices are never drawn) but the total weight must be positive and finite.
#[derive(Debug, Clone)]
pub struct AliasTable {
    /// Acceptance probability for each bucket, scaled to [0, 1].
    prob: Vec<f64>,
    /// Alias index for each bucket.
    alias: Vec<u32>,
}

impl AliasTable {
    /// Builds an alias table from unnormalised weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    #[must_use]
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "alias table needs at least one weight");
        assert!(
            weights.len() <= u32::MAX as usize,
            "alias table supports at most 2^32-1 outcomes"
        );
        let total: f64 = weights
            .iter()
            .map(|&w| {
                assert!(
                    w.is_finite() && w >= 0.0,
                    "weights must be finite and non-negative"
                );
                w
            })
            .sum();
        assert!(total > 0.0, "total weight must be positive");

        let n = weights.len();
        let scale = n as f64 / total;
        let mut prob: Vec<f64> = weights.iter().map(|&w| w * scale).collect();
        let mut alias = vec![0u32; n];

        // Classic two-stack construction. `small` holds buckets with
        // remaining mass < 1, `large` those with > 1.
        let mut small: Vec<u32> = Vec::with_capacity(n);
        let mut large: Vec<u32> = Vec::with_capacity(n);
        for (i, &p) in prob.iter().enumerate() {
            if p < 1.0 {
                small.push(i as u32);
            } else {
                large.push(i as u32);
            }
        }
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s as usize] = l;
            // Move the deficit of `s` out of `l`.
            prob[l as usize] = (prob[l as usize] + prob[s as usize]) - 1.0;
            if prob[l as usize] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical slack: leftovers get probability 1.
        for i in small.into_iter().chain(large) {
            prob[i as usize] = 1.0;
        }

        Self { prob, alias }
    }

    /// Number of outcomes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when the table has no outcomes (never: construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one outcome index.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let i = rng.random_range(0..self.prob.len());
        let coin: f64 = rng.random();
        if coin < self.prob[i] {
            i
        } else {
            self.alias[i] as usize
        }
    }
}

/// Unnormalised Zipf–Mandelbrot weights `1 / (rank + shift)^exponent` for
/// ranks `0..n`.
///
/// `shift > 0` flattens the head (plain Zipf is `shift = 1.0` applied to
/// 1-based ranks). The synthetic catalogue uses these as popularity weights.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ZipfWeights {
    /// Power-law exponent (`s` in 1/rank^s). Typical range 0.5–1.5.
    pub exponent: f64,
    /// Mandelbrot shift added to the 1-based rank.
    pub shift: f64,
}

impl ZipfWeights {
    /// Plain Zipf with the given exponent.
    #[must_use]
    pub fn new(exponent: f64) -> Self {
        Self {
            exponent,
            shift: 0.0,
        }
    }

    /// Zipf–Mandelbrot with a head-flattening shift.
    #[must_use]
    pub fn with_shift(exponent: f64, shift: f64) -> Self {
        Self { exponent, shift }
    }

    /// Weight of 0-based rank `r`.
    #[inline]
    #[must_use]
    pub fn weight(&self, r: usize) -> f64 {
        ((r + 1) as f64 + self.shift).powf(-self.exponent)
    }

    /// Materialises weights for ranks `0..n`.
    #[must_use]
    pub fn weights(&self, n: usize) -> Vec<f64> {
        (0..n).map(|r| self.weight(r)).collect()
    }

    /// Builds an alias table over ranks `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn alias_table(&self, n: usize) -> AliasTable {
        AliasTable::new(&self.weights(n))
    }
}

/// A log-normal distribution sampled via Box–Muller.
///
/// `mu`/`sigma` are the parameters of the underlying normal (so the median is
/// `exp(mu)`). Used for per-user activity volumes, which the paper reports as
/// strongly right-skewed (mean 33 loans, 75 % of users below 24).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    /// Mean of the underlying normal distribution.
    pub mu: f64,
    /// Standard deviation of the underlying normal distribution.
    pub sigma: f64,
}

impl LogNormal {
    /// Creates the distribution; `sigma` must be non-negative.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or either parameter is non-finite.
    #[must_use]
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(mu.is_finite() && sigma.is_finite() && sigma >= 0.0);
        Self { mu, sigma }
    }

    /// Draws one value.
    #[inline]
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        (self.mu + self.sigma * standard_normal(rng)).exp()
    }

    /// Draws one value, clamped to `[lo, hi]` and rounded to the nearest
    /// integer — the common "how many readings does this user have" shape.
    #[inline]
    pub fn sample_count<R: Rng + ?Sized>(&self, rng: &mut R, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        let v = self.sample(rng).round();
        if v <= lo as f64 {
            lo
        } else if v >= hi as f64 {
            hi
        } else {
            v as u64
        }
    }
}

/// One draw from the standard normal distribution (Box–Muller, polar-free
/// form). Two uniforms per draw; the paired variate is discarded for
/// simplicity — generation here is nowhere near the profile's hot path.
#[inline]
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // Guard against ln(0).
    let u1: f64 = loop {
        let u: f64 = rng.random();
        if u > f64::EPSILON {
            break u;
        }
    };
    let u2: f64 = rng.random();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

/// Samples `k` distinct values from `0..n` (uniform, without replacement).
///
/// Uses Floyd's algorithm: O(k) expected time and O(k) space, independent of
/// `n`. The result is returned in insertion order (not sorted).
///
/// # Panics
///
/// Panics if `k > n`.
pub fn sample_distinct<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<usize> {
    assert!(k <= n, "cannot sample {k} distinct values from 0..{n}");
    let mut chosen: std::collections::HashSet<usize> = std::collections::HashSet::with_capacity(k);
    let mut out = Vec::with_capacity(k);
    for j in (n - k)..n {
        let t = rng.random_range(0..=j);
        let v = if chosen.contains(&t) { j } else { t };
        chosen.insert(v);
        out.push(v);
    }
    out
}

/// Samples one index from unnormalised `weights` by inverse-CDF walk.
///
/// O(n) per draw — fine for one-off draws over small supports where building
/// an [`AliasTable`] would not pay off.
///
/// # Panics
///
/// Panics if weights are empty or sum to zero.
pub fn sample_weighted_once<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    let total: f64 = weights.iter().sum();
    assert!(total > 0.0, "weights must have positive total");
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        target -= w;
        if target < 0.0 {
            return i;
        }
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn frequencies(table: &AliasTable, draws: usize, seed: u64) -> Vec<f64> {
        let mut rng = rng_from_seed(seed);
        let mut counts = vec![0usize; table.len()];
        for _ in 0..draws {
            counts[table.sample(&mut rng)] += 1;
        }
        counts.iter().map(|&c| c as f64 / draws as f64).collect()
    }

    #[test]
    fn alias_matches_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = AliasTable::new(&weights);
        let freq = frequencies(&table, 200_000, 1);
        for (i, &w) in weights.iter().enumerate() {
            let expected = w / 10.0;
            assert!(
                (freq[i] - expected).abs() < 0.01,
                "bucket {i}: got {} want {expected}",
                freq[i]
            );
        }
    }

    #[test]
    fn alias_zero_weight_never_drawn() {
        let table = AliasTable::new(&[0.0, 1.0, 0.0, 1.0]);
        let freq = frequencies(&table, 50_000, 2);
        assert_eq!(freq[0], 0.0);
        assert_eq!(freq[2], 0.0);
    }

    #[test]
    fn alias_single_outcome() {
        let table = AliasTable::new(&[3.5]);
        let mut rng = rng_from_seed(3);
        for _ in 0..10 {
            assert_eq!(table.sample(&mut rng), 0);
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn alias_rejects_zero_total() {
        let _ = AliasTable::new(&[0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn alias_rejects_empty() {
        let _ = AliasTable::new(&[]);
    }

    #[test]
    fn zipf_weights_decrease() {
        let z = ZipfWeights::new(1.0);
        let w = z.weights(10);
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1]);
        }
        assert!((w[0] / w[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn zipf_shift_flattens_head() {
        let plain = ZipfWeights::new(1.0);
        let shifted = ZipfWeights::with_shift(1.0, 5.0);
        let ratio_plain = plain.weight(0) / plain.weight(1);
        let ratio_shifted = shifted.weight(0) / shifted.weight(1);
        assert!(ratio_shifted < ratio_plain);
    }

    #[test]
    fn lognormal_median_near_exp_mu() {
        let d = LogNormal::new(3.0, 0.8);
        let mut rng = rng_from_seed(4);
        let mut v: Vec<f64> = (0..20_001).map(|_| d.sample(&mut rng)).collect();
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = v[v.len() / 2];
        let expected = 3.0f64.exp();
        assert!(
            (median / expected - 1.0).abs() < 0.05,
            "median {median} vs {expected}"
        );
    }

    #[test]
    fn lognormal_count_respects_bounds() {
        let d = LogNormal::new(3.0, 1.5);
        let mut rng = rng_from_seed(5);
        for _ in 0..1000 {
            let c = d.sample_count(&mut rng, 10, 480);
            assert!((10..=480).contains(&c));
        }
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = rng_from_seed(6);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn sample_distinct_is_distinct_and_in_range() {
        let mut rng = rng_from_seed(7);
        for _ in 0..50 {
            let got = sample_distinct(&mut rng, 100, 30);
            assert_eq!(got.len(), 30);
            let set: std::collections::HashSet<_> = got.iter().copied().collect();
            assert_eq!(set.len(), 30);
            assert!(got.iter().all(|&v| v < 100));
        }
    }

    #[test]
    fn sample_distinct_full_range() {
        let mut rng = rng_from_seed(8);
        let mut got = sample_distinct(&mut rng, 10, 10);
        got.sort_unstable();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn sample_weighted_once_respects_weights() {
        let mut rng = rng_from_seed(9);
        let weights = [0.0, 9.0, 1.0];
        let mut counts = [0usize; 3];
        for _ in 0..20_000 {
            counts[sample_weighted_once(&mut rng, &weights)] += 1;
        }
        assert_eq!(counts[0], 0);
        let share1 = counts[1] as f64 / 20_000.0;
        assert!((share1 - 0.9).abs() < 0.01, "share {share1}");
    }
}
