//! Monotonic time for the serving layer: a clock abstraction, request
//! deadlines, and deterministic retry backoff.
//!
//! Production code reads a [`MonotonicClock`] (a thin wrapper over
//! [`std::time::Instant`]); tests substitute a [`FakeClock`] whose
//! [`Clock::sleep`] *advances* the reading instead of blocking, so
//! timeout and circuit-breaker behaviour is exercised deterministically
//! and instantly. A [`Deadline`] is a point on that timeline; a
//! [`Backoff`] is a bounded exponential retry schedule whose jitter is
//! derived from a seed (via [`crate::rng::derive_seed`]) rather than an
//! ambient RNG, so retry timing is reproducible too.

use crate::rng::{derive_seed, unit_f64};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A monotonic clock: readings never decrease and start near zero.
///
/// `Send + Sync` because the serving engine shares one clock across its
/// worker threads; `Debug` so engine configurations stay printable.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Time elapsed since the clock's origin.
    fn now(&self) -> Duration;

    /// Blocks (or, for fake clocks, pretends to block) for `d`.
    ///
    /// The default implementation really sleeps; [`FakeClock`] overrides
    /// it to advance its reading so tests never wait on wall time.
    fn sleep(&self, d: Duration) {
        std::thread::sleep(d);
    }
}

/// The production clock: [`Instant`]-backed, origin at construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    #[must_use]
    pub fn new() -> Self {
        Self {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A test clock that only moves when told to (or when "slept" on).
///
/// Shared via `Arc`: the test holds one handle and advances it, the code
/// under test reads another.
#[derive(Debug, Default)]
pub struct FakeClock {
    nanos: AtomicU64,
}

impl FakeClock {
    /// A fake clock reading zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Moves the reading forward by `d`.
    pub fn advance(&self, d: Duration) {
        self.nanos.fetch_add(d.as_nanos() as u64, Ordering::SeqCst);
    }
}

impl Clock for FakeClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }

    /// Advances instead of blocking: injected latency costs simulated
    /// time, not test wall time.
    fn sleep(&self, d: Duration) {
        self.advance(d);
    }
}

/// A point on a clock's timeline by which work must finish.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Deadline {
    at: Duration,
}

impl Deadline {
    /// The deadline `budget` from the clock's current reading.
    #[must_use]
    pub fn after(clock: &dyn Clock, budget: Duration) -> Self {
        Self {
            at: clock.now() + budget,
        }
    }

    /// A deadline at an absolute clock reading.
    #[must_use]
    pub fn at(at: Duration) -> Self {
        Self { at }
    }

    /// True once the clock has reached the deadline.
    #[must_use]
    pub fn expired(&self, clock: &dyn Clock) -> bool {
        clock.now() >= self.at
    }

    /// Time left before expiry (zero once expired).
    #[must_use]
    pub fn remaining(&self, clock: &dyn Clock) -> Duration {
        self.at.saturating_sub(clock.now())
    }
}

/// A bounded exponential backoff schedule with deterministic jitter.
///
/// Attempt `i` (zero-based) waits `base * 2^i` capped at `max`, scaled
/// by a jitter factor in `[0.5, 1.0)` drawn from `seed` and `i` alone —
/// two processes with the same seed retry on the same schedule, and a
/// test can predict every delay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Backoff {
    /// Total attempts (the first is immediate; sleeps happen between).
    pub attempts: u32,
    /// Delay before the second attempt.
    pub base: Duration,
    /// Cap on any single delay.
    pub max: Duration,
    /// Jitter stream seed.
    pub seed: u64,
}

impl Default for Backoff {
    fn default() -> Self {
        Self {
            attempts: 4,
            base: Duration::from_millis(50),
            max: Duration::from_secs(2),
            seed: 0x5EED,
        }
    }
}

impl Backoff {
    /// The delay to wait after failed attempt `attempt` (zero-based).
    #[must_use]
    pub fn delay(&self, attempt: u32) -> Duration {
        let doubling = 1u32 << attempt.min(20);
        let exp = self.base.saturating_mul(doubling).min(self.max);
        let jitter = 0.5 + unit_f64(derive_seed(self.seed, u64::from(attempt))) / 2.0;
        exp.mul_f64(jitter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monotonic_clock_never_goes_backwards() {
        let c = MonotonicClock::new();
        let a = c.now();
        let b = c.now();
        assert!(b >= a);
    }

    #[test]
    fn fake_clock_moves_only_on_advance() {
        let c = FakeClock::new();
        assert_eq!(c.now(), Duration::ZERO);
        c.advance(Duration::from_millis(5));
        assert_eq!(c.now(), Duration::from_millis(5));
        // sleep() is simulated: it advances rather than blocks.
        c.sleep(Duration::from_secs(3600));
        assert_eq!(
            c.now(),
            Duration::from_secs(3600) + Duration::from_millis(5)
        );
    }

    #[test]
    fn deadline_expires_exactly_on_time() {
        let c = FakeClock::new();
        let d = Deadline::after(&c, Duration::from_millis(10));
        assert!(!d.expired(&c));
        assert_eq!(d.remaining(&c), Duration::from_millis(10));
        c.advance(Duration::from_millis(9));
        assert!(!d.expired(&c));
        c.advance(Duration::from_millis(1));
        assert!(d.expired(&c));
        assert_eq!(d.remaining(&c), Duration::ZERO);
    }

    #[test]
    fn backoff_is_deterministic_and_bounded() {
        let b = Backoff::default();
        for attempt in 0..6 {
            let d1 = b.delay(attempt);
            let d2 = b.delay(attempt);
            assert_eq!(d1, d2, "attempt {attempt} must be reproducible");
            let exp = b.base.saturating_mul(1 << attempt).min(b.max);
            assert!(d1 >= exp.mul_f64(0.5), "attempt {attempt}: {d1:?} < half");
            assert!(d1 <= exp, "attempt {attempt}: {d1:?} > cap");
        }
    }

    #[test]
    fn backoff_seeds_decorrelate_schedules() {
        let a = Backoff {
            seed: 1,
            ..Backoff::default()
        };
        let b = Backoff {
            seed: 2,
            ..Backoff::default()
        };
        let differs = (0..4).any(|i| a.delay(i) != b.delay(i));
        assert!(differs, "different seeds should jitter differently");
    }

    #[test]
    fn backoff_caps_at_max() {
        let b = Backoff {
            attempts: 10,
            base: Duration::from_millis(100),
            max: Duration::from_millis(300),
            seed: 7,
        };
        for attempt in 0..10 {
            assert!(b.delay(attempt) <= Duration::from_millis(300));
        }
    }
}
