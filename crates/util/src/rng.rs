//! Seeded, splittable random-number generation.
//!
//! Every stochastic component in the workspace (data generators, splitters,
//! SGD initialisation, negative samplers, the random recommender) is driven
//! by an explicit `u64` seed. To keep independent pipeline stages
//! *independently* reproducible — adding one more draw in stage A must not
//! perturb stage B — seeds are derived hierarchically with
//! [`derive_seed`], a SplitMix64-style mixer, instead of sharing one RNG
//! stream across stages.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Convenience alias: the single RNG type used across the workspace.
pub type SeedableStdRng = StdRng;

/// Creates the workspace-standard RNG from a `u64` seed.
#[inline]
pub fn rng_from_seed(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Derives a child seed from a parent seed and a stream label.
///
/// The label keeps sibling streams (e.g. "titles" vs. "plots") decorrelated
/// even when the parent seed is small or sequential. Mixing follows
/// SplitMix64's finaliser, which has full avalanche behaviour, so
/// `derive_seed(s, a) != derive_seed(s, b)` for all practically relevant
/// `a != b`.
#[inline]
#[must_use]
pub fn derive_seed(parent: u64, label: u64) -> u64 {
    let mut z = parent ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives a child seed from a parent seed and a string label.
///
/// Used where the stream identity is most naturally a name
/// (`"bct.loans"`, `"anobii.ratings"`, ...). The string is folded with FNV-1a
/// before mixing, so the mapping is stable across runs and platforms.
#[inline]
#[must_use]
pub fn derive_seed_str(parent: u64, label: &str) -> u64 {
    const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = FNV_OFFSET;
    for b in label.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    derive_seed(parent, h)
}

/// Maps a seed to a uniform `f64` in `[0, 1)`.
///
/// Used where a single deterministic draw is needed without the weight of
/// an RNG stream — e.g. the jitter factor of a retry backoff schedule
/// (`rm_util::clock::Backoff`). The top 53 bits of the seed become the
/// mantissa, so the mapping is exact and platform-independent.
#[inline]
#[must_use]
pub fn unit_f64(seed: u64) -> f64 {
    (seed >> 11) as f64 / (1u64 << 53) as f64
}

/// A small hierarchical seed source.
///
/// A `SeedTree` wraps one seed and hands out labelled child seeds or child
/// RNGs. Typical use: the corpus generator owns the root, each table
/// generator gets `tree.child("loans")`, and each user gets
/// `tree.child("loans").child_idx(user_idx)` so per-user streams are stable
/// under reordering of other users.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedTree {
    seed: u64,
}

impl SeedTree {
    /// Creates a tree rooted at `seed`.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The seed at this node.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A child node labelled by a string.
    #[must_use]
    pub fn child(&self, label: &str) -> Self {
        Self {
            seed: derive_seed_str(self.seed, label),
        }
    }

    /// A child node labelled by an index.
    #[must_use]
    pub fn child_idx(&self, idx: u64) -> Self {
        Self {
            seed: derive_seed(self.seed, idx),
        }
    }

    /// An RNG seeded at this node.
    #[must_use]
    pub fn rng(&self) -> StdRng {
        rng_from_seed(self.seed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = rng_from_seed(7);
        let mut b = rng_from_seed(8);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn derive_seed_is_label_sensitive() {
        let s = 12345;
        assert_ne!(derive_seed(s, 0), derive_seed(s, 1));
        assert_ne!(derive_seed(s, 1), derive_seed(s, 2));
        assert_ne!(derive_seed_str(s, "loans"), derive_seed_str(s, "ratings"));
    }

    #[test]
    fn derive_seed_is_parent_sensitive() {
        assert_ne!(derive_seed(1, 42), derive_seed(2, 42));
        assert_ne!(derive_seed_str(1, "x"), derive_seed_str(2, "x"));
    }

    #[test]
    fn seed_tree_children_are_stable_and_distinct() {
        let t = SeedTree::new(99);
        assert_eq!(t.child("a").seed(), t.child("a").seed());
        assert_ne!(t.child("a").seed(), t.child("b").seed());
        assert_ne!(t.child_idx(0).seed(), t.child_idx(1).seed());
        // Nested derivation is order-dependent, as intended.
        assert_ne!(
            t.child("a").child("b").seed(),
            t.child("b").child("a").seed()
        );
    }

    #[test]
    fn unit_f64_is_in_range_and_deterministic() {
        for seed in [0u64, 1, 42, u64::MAX, 0x5EED_5EED_5EED_5EED] {
            let u = unit_f64(seed);
            assert!((0.0..1.0).contains(&u), "unit_f64({seed}) = {u}");
            assert_eq!(u, unit_f64(seed));
        }
        // Not constant.
        assert_ne!(unit_f64(derive_seed(1, 0)), unit_f64(derive_seed(1, 1)));
    }

    #[test]
    fn seed_tree_rng_matches_direct_construction() {
        let t = SeedTree::new(5).child("x");
        let mut a = t.rng();
        let mut b = rng_from_seed(t.seed());
        assert_eq!(a.random::<u64>(), b.random::<u64>());
    }
}
