//! The five KPIs of Section 5.
//!
//! All KPIs average over the evaluation users (BCT users with a non-empty
//! test set). One full ranking per user serves every KPI and every `k`
//! simultaneously:
//!
//! * **URR** (Eq. 4) — fraction of users with ≥ 1 relevant book in their
//!   top-k;
//! * **NRR** (Eq. 5) — mean number of relevant books in the top-k;
//! * **Precision** (Eq. 6) — mean `|T_u ∩ R_u| / |R_u|`;
//! * **Recall** (Eq. 7) — mean `|T_u ∩ R_u| / |T_u|`;
//! * **FR** — mean rank (1-based) of the first relevant book over the full
//!   ranking; independent of `k`. A user none of whose test books appear
//!   in the ranking contributes `ranking length + 1` — one position past
//!   the end, strictly worse than a last-place hit, per the paper's §5
//!   convention of penalising a miss beyond the list (cannot happen with
//!   the in-tree recommenders, whose rankings cover all unseen books, but
//!   the sentinel keeps the metric total).

use crate::split::Split;
use rm_core::Recommender;
use rm_dataset::ids::UserIdx;

/// One evaluation case: a user (in the recommender's index space) plus
/// their sorted test books.
#[derive(Debug, Clone)]
pub struct UserCase<'a> {
    /// User index *in the recommender's training matrix*.
    pub user: UserIdx,
    /// The user's test books, sorted ascending.
    pub test: &'a [u32],
}

/// The KPI values at one `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Kpis {
    /// Recommendation list length.
    pub k: usize,
    /// Users with Relevant Recommendations (Eq. 4).
    pub urr: f64,
    /// Average Number of Relevant Recommendations (Eq. 5).
    pub nrr: f64,
    /// Precision (Eq. 6).
    pub precision: f64,
    /// Recall (Eq. 7).
    pub recall: f64,
    /// Average First Rank position (1-based; k-independent).
    pub first_rank: f64,
    /// Number of users evaluated.
    pub n_users: usize,
}

/// Partial KPI sums over a chunk of users; combined across chunks by the
/// parallel evaluator.
#[derive(Debug, Clone)]
struct Accumulator {
    per_k_hits: Vec<u64>,
    per_k_users_hit: Vec<u64>,
    per_k_precision: Vec<f64>,
    per_k_recall: Vec<f64>,
    first_rank_sum: f64,
    n_users: usize,
}

impl Accumulator {
    fn new(n_ks: usize) -> Self {
        Self {
            per_k_hits: vec![0; n_ks],
            per_k_users_hit: vec![0; n_ks],
            per_k_precision: vec![0.0; n_ks],
            per_k_recall: vec![0.0; n_ks],
            first_rank_sum: 0.0,
            n_users: 0,
        }
    }

    fn merge(&mut self, other: &Self) {
        for (a, b) in self.per_k_hits.iter_mut().zip(&other.per_k_hits) {
            *a += b;
        }
        for (a, b) in self.per_k_users_hit.iter_mut().zip(&other.per_k_users_hit) {
            *a += b;
        }
        for (a, b) in self.per_k_precision.iter_mut().zip(&other.per_k_precision) {
            *a += b;
        }
        for (a, b) in self.per_k_recall.iter_mut().zip(&other.per_k_recall) {
            *a += b;
        }
        self.first_rank_sum += other.first_rank_sum;
        self.n_users += other.n_users;
    }

    fn into_kpis(self, ks: &[usize]) -> Vec<Kpis> {
        let denom = self.n_users.max(1) as f64;
        ks.iter()
            .enumerate()
            .map(|(ki, &k)| Kpis {
                k,
                urr: self.per_k_users_hit[ki] as f64 / denom,
                nrr: self.per_k_hits[ki] as f64 / denom,
                precision: self.per_k_precision[ki] / denom,
                recall: self.per_k_recall[ki] / denom,
                first_rank: self.first_rank_sum / denom,
                n_users: self.n_users,
            })
            .collect()
    }
}

/// Users per [`Recommender::recommend_batch`] call inside
/// [`accumulate`]: large enough to amortise per-batch setup (score
/// buffers), small enough to keep at most a few full rankings resident.
const EVAL_BATCH: usize = 64;

/// One ranking pass per user over a chunk of cases, batched through
/// [`Recommender::recommend_batch_into`] so models that amortise per-call
/// setup across a batch (BPR's score buffer, Closest Items' similarity
/// buffer) serve the evaluator at batch speed. The ranking pool and the
/// per-position hit counters persist across chunks, so per-user scoring
/// does not touch the allocator once the buffers reach steady state.
fn accumulate(rec: &dyn Recommender, cases: &[UserCase<'_>], ks: &[usize]) -> Accumulator {
    let max_k = *ks.iter().max().expect("non-empty ks");
    let mut acc = Accumulator::new(ks.len());

    let live: Vec<&UserCase<'_>> = cases.iter().filter(|c| !c.test.is_empty()).collect();
    let mut users: Vec<UserIdx> = Vec::with_capacity(EVAL_BATCH);
    let mut rankings: Vec<Vec<u32>> = Vec::with_capacity(EVAL_BATCH);
    let mut hits_at: Vec<u32> = Vec::new();
    for chunk in live.chunks(EVAL_BATCH) {
        users.clear();
        users.extend(chunk.iter().map(|c| c.user));
        // Full rankings (k unbounded): FR needs the first relevant
        // position wherever it falls.
        rec.recommend_batch_into(&users, usize::MAX, &mut rankings);
        debug_assert_eq!(rankings.len(), chunk.len(), "recommend_batch contract");
        for (case, ranking) in chunk.iter().zip(&rankings) {
            acc.n_users += 1;
            // First relevant rank + cumulative hit counts at each position
            // up to max_k.
            let mut first_rank: Option<usize> = None;
            hits_at.clear();
            hits_at.resize(max_k + 1, 0);
            let mut hits = 0u32;
            for (pos, &b) in ranking.iter().enumerate() {
                let relevant = case.test.binary_search(&b).is_ok();
                if relevant && first_rank.is_none() {
                    first_rank = Some(pos + 1);
                }
                if pos < max_k {
                    if relevant {
                        hits += 1;
                    }
                    hits_at[pos + 1] = hits;
                } else if first_rank.is_some() {
                    break;
                }
            }
            // A miss is charged one rank past the end of the list —
            // strictly worse than a hit at the last position.
            acc.first_rank_sum += first_rank.unwrap_or(ranking.len() + 1) as f64;

            for (ki, &k) in ks.iter().enumerate() {
                let reach = k.min(ranking.len());
                let h = u64::from(hits_at[reach.min(max_k)]);
                acc.per_k_hits[ki] += h;
                if h > 0 {
                    acc.per_k_users_hit[ki] += 1;
                }
                if reach > 0 {
                    acc.per_k_precision[ki] += h as f64 / reach as f64;
                }
                acc.per_k_recall[ki] += h as f64 / case.test.len() as f64;
            }
        }
    }
    acc
}

/// Evaluates a recommender at several `k` values with one ranking pass per
/// user. `ks` must be non-empty; cases with an empty test set are skipped.
#[must_use]
pub fn evaluate_at(rec: &dyn Recommender, cases: &[UserCase<'_>], ks: &[usize]) -> Vec<Kpis> {
    assert!(!ks.is_empty(), "need at least one k");
    accumulate(rec, cases, ks).into_kpis(ks)
}

/// Parallel [`evaluate_at`]: users are split across `threads` chunks and
/// each chunk is evaluated on its own thread. URR and NRR are bit-identical
/// to the serial version (integer sums); precision/recall/first-rank agree
/// up to floating-point summation order. Deterministic: chunking and the
/// merge order are fixed.
///
/// # Panics
///
/// Panics if `ks` is empty or `threads == 0`.
#[must_use]
pub fn evaluate_at_parallel(
    rec: &(dyn Recommender + Sync),
    cases: &[UserCase<'_>],
    ks: &[usize],
    threads: usize,
) -> Vec<Kpis> {
    assert!(!ks.is_empty(), "need at least one k");
    assert!(threads > 0, "need at least one thread");
    if threads == 1 || cases.len() < 2 * threads {
        return evaluate_at(rec, cases, ks);
    }
    let chunk = cases.len().div_ceil(threads);
    let partials: Vec<Accumulator> = std::thread::scope(|scope| {
        let handles: Vec<_> = cases
            .chunks(chunk)
            .map(|slice| scope.spawn(move || accumulate(rec, slice, ks)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("evaluator thread panicked"))
            .collect()
    });
    let mut total = Accumulator::new(ks.len());
    for p in &partials {
        total.merge(p);
    }
    total.into_kpis(ks)
}

/// Evaluates at a single `k`.
#[must_use]
pub fn evaluate(rec: &dyn Recommender, cases: &[UserCase<'_>], k: usize) -> Kpis {
    evaluate_at(rec, cases, &[k])[0]
}

/// Parallel [`evaluate`].
#[must_use]
pub fn evaluate_parallel(
    rec: &(dyn Recommender + Sync),
    cases: &[UserCase<'_>],
    k: usize,
    threads: usize,
) -> Kpis {
    evaluate_at_parallel(rec, cases, &[k], threads)[0]
}

/// The machine's available parallelism (1 when unknown).
#[must_use]
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map_or(1, std::num::NonZero::get)
}

/// Builds the standard evaluation cases from a split: every user with a
/// non-empty test set, identified in the full corpus index space.
#[must_use]
pub fn test_cases(split: &Split) -> Vec<UserCase<'_>> {
    split
        .test
        .iter()
        .enumerate()
        .filter(|(_, t)| !t.is_empty())
        .map(|(u, t)| UserCase {
            user: UserIdx(u as u32),
            test: t,
        })
        .collect()
}

/// Builds validation cases (used by the grid search, which selects by
/// validation URR).
#[must_use]
pub fn validation_cases(split: &Split) -> Vec<UserCase<'_>> {
    split
        .validation
        .iter()
        .enumerate()
        .filter(|(_, v)| !v.is_empty())
        .map(|(u, v)| UserCase {
            user: UserIdx(u as u32),
            test: v,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_dataset::ids::BookIdx;
    use rm_dataset::interactions::Interactions;

    /// A recommender with a fixed global ranking (book 0 best), excluding
    /// seen books.
    struct FixedRanking {
        train: Interactions,
    }

    impl Recommender for FixedRanking {
        fn name(&self) -> &str {
            "fixed"
        }
        fn fit(&mut self, _train: &Interactions) {}
        fn score(&self, _u: UserIdx, b: BookIdx) -> f32 {
            -(b.0 as f32)
        }
        fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
            let seen = self.train.seen(user);
            (0..self.train.n_books() as u32)
                .filter(|b| seen.binary_search(b).is_err())
                .take(k)
                .collect()
        }
        fn rank_all(&self, user: UserIdx) -> Vec<u32> {
            self.recommend(user, self.train.n_books())
        }
    }

    fn rec() -> FixedRanking {
        FixedRanking {
            train: Interactions::from_pairs(2, 10, &[(UserIdx(0), BookIdx(0))]),
        }
    }

    #[test]
    fn kpis_hand_computed() {
        // User 0: seen {0}, ranking = 1..9. Test {2, 9}.
        // k=3 → recs {1,2,3}: hits 1; first relevant rank = 2.
        let r = rec();
        let test = [2u32, 9];
        let cases = [UserCase {
            user: UserIdx(0),
            test: &test,
        }];
        let k3 = evaluate(&r, &cases, 3);
        assert_eq!(k3.n_users, 1);
        assert_eq!(k3.urr, 1.0);
        assert_eq!(k3.nrr, 1.0);
        assert!((k3.precision - 1.0 / 3.0).abs() < 1e-12);
        assert!((k3.recall - 0.5).abs() < 1e-12);
        assert_eq!(k3.first_rank, 2.0);
    }

    #[test]
    fn k1_miss_counts_zero() {
        let r = rec();
        let test = [2u32];
        let cases = [UserCase {
            user: UserIdx(0),
            test: &test,
        }];
        let k1 = evaluate(&r, &cases, 1);
        assert_eq!(k1.urr, 0.0);
        assert_eq!(k1.nrr, 0.0);
        assert_eq!(k1.precision, 0.0);
        assert_eq!(k1.recall, 0.0);
        assert_eq!(k1.first_rank, 2.0); // FR ignores k
    }

    #[test]
    fn multi_k_consistent_with_single_k() {
        let r = rec();
        let test = [2u32, 5, 9];
        let cases = [UserCase {
            user: UserIdx(0),
            test: &test,
        }];
        let multi = evaluate_at(&r, &cases, &[1, 3, 5, 9]);
        for kpi in &multi {
            let single = evaluate(&r, &cases, kpi.k);
            assert_eq!(kpi, &single, "k = {}", kpi.k);
        }
    }

    #[test]
    fn averaging_over_users() {
        let r = rec();
        let t0 = [1u32]; // hit at rank 1 for user 0
        let t1 = [9u32]; // user 1 (nothing seen): rank of 9 is 10
        let cases = [
            UserCase {
                user: UserIdx(0),
                test: &t0,
            },
            UserCase {
                user: UserIdx(1),
                test: &t1,
            },
        ];
        let k = evaluate(&r, &cases, 1);
        assert_eq!(k.n_users, 2);
        assert_eq!(k.urr, 0.5);
        assert_eq!(k.nrr, 0.5);
        assert_eq!(k.first_rank, (1.0 + 10.0) / 2.0);
    }

    #[test]
    fn miss_sentinel_is_one_past_the_list() {
        let r = rec();
        // User 0's ranking is 1..=9 (book 0 is excluded as seen): 9
        // items. A hit at the very last position scores rank 9 …
        let last = [9u32];
        let hit = evaluate(
            &r,
            &[UserCase {
                user: UserIdx(0),
                test: &last,
            }],
            1,
        );
        assert_eq!(hit.first_rank, 9.0);
        // … while a test book that never appears in the ranking is
        // charged one rank past the end — strictly worse than any hit.
        let missing = [0u32];
        let miss = evaluate(
            &r,
            &[UserCase {
                user: UserIdx(0),
                test: &missing,
            }],
            1,
        );
        assert_eq!(miss.first_rank, 10.0);
        assert!(miss.first_rank > hit.first_rank);
    }

    #[test]
    fn empty_test_users_skipped() {
        let r = rec();
        let t: [u32; 0] = [];
        let t1 = [1u32];
        let cases = [
            UserCase {
                user: UserIdx(0),
                test: &t,
            },
            UserCase {
                user: UserIdx(1),
                test: &t1,
            },
        ];
        let k = evaluate(&r, &cases, 5);
        assert_eq!(k.n_users, 1);
        assert_eq!(k.urr, 1.0);
    }

    #[test]
    fn urr_bounded_by_one_nrr_by_test_size() {
        let r = rec();
        let test = [1u32, 2, 3];
        let cases = [UserCase {
            user: UserIdx(0),
            test: &test,
        }];
        let k = evaluate(&r, &cases, 9);
        assert_eq!(k.urr, 1.0);
        assert_eq!(k.nrr, 3.0);
        assert_eq!(k.recall, 1.0);
    }

    #[test]
    fn parallel_matches_serial() {
        let r = rec();
        let tests: Vec<Vec<u32>> = (0..40)
            .map(|i| vec![1 + (i % 5) as u32, 6 + (i % 3) as u32])
            .collect();
        let cases: Vec<UserCase<'_>> = tests
            .iter()
            .map(|t| UserCase {
                user: UserIdx(1),
                test: t,
            })
            .collect();
        let ks = [1usize, 3, 7];
        let serial = evaluate_at(&r, &cases, &ks);
        for threads in [1usize, 2, 4, 7] {
            let parallel = evaluate_at_parallel(&r, &cases, &ks, threads);
            for (s, p) in serial.iter().zip(&parallel) {
                assert_eq!(s.urr, p.urr, "threads {threads}");
                assert_eq!(s.nrr, p.nrr, "threads {threads}");
                assert!((s.precision - p.precision).abs() < 1e-12);
                assert!((s.recall - p.recall).abs() < 1e-12);
                assert!((s.first_rank - p.first_rank).abs() < 1e-9);
                assert_eq!(s.n_users, p.n_users);
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least one k")]
    fn empty_ks_rejected() {
        let r = rec();
        let _ = evaluate_at(&r, &[], &[]);
    }

    /// Wraps [`FixedRanking`] to observe how the harness drives the batch
    /// path: counts calls and whether the ranking pool's first buffer kept
    /// its allocation between chunks.
    struct PoolProbe {
        inner: FixedRanking,
        calls: std::cell::Cell<usize>,
        reuses: std::cell::Cell<usize>,
        last_ptr: std::cell::Cell<*const u32>,
    }

    impl Recommender for PoolProbe {
        fn name(&self) -> &str {
            "probe"
        }
        fn fit(&mut self, train: &Interactions) {
            self.inner.fit(train);
        }
        fn score(&self, u: UserIdx, b: BookIdx) -> f32 {
            self.inner.score(u, b)
        }
        fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
            self.inner.recommend(user, k)
        }
        fn recommend_batch_into(&self, users: &[UserIdx], k: usize, out: &mut Vec<Vec<u32>>) {
            out.resize_with(users.len(), Vec::new);
            for (&u, slot) in users.iter().zip(out.iter_mut()) {
                slot.clear();
                let seen = self.inner.train.seen(u);
                slot.extend(
                    (0..self.inner.train.n_books() as u32)
                        .filter(|b| seen.binary_search(b).is_err())
                        .take(k),
                );
            }
            if let Some(first) = out.first() {
                if first.as_ptr() == self.last_ptr.get() {
                    self.reuses.set(self.reuses.get() + 1);
                }
                self.last_ptr.set(first.as_ptr());
            }
            self.calls.set(self.calls.get() + 1);
        }
        fn rank_all(&self, user: UserIdx) -> Vec<u32> {
            self.inner.rank_all(user)
        }
    }

    #[test]
    fn harness_reuses_ranking_pool_across_chunks() {
        // More cases than one EVAL_BATCH forces several batch calls; the
        // harness must hand the model the *same* pool each time so ranking
        // buffers are refilled in place (no per-user allocation).
        let probe = PoolProbe {
            inner: FixedRanking {
                train: Interactions::from_pairs(200, 10, &[]),
            },
            calls: std::cell::Cell::new(0),
            reuses: std::cell::Cell::new(0),
            last_ptr: std::cell::Cell::new(std::ptr::null()),
        };
        let tests: Vec<Vec<u32>> = (0..200).map(|i| vec![(i % 10) as u32]).collect();
        let cases: Vec<UserCase<'_>> = tests
            .iter()
            .enumerate()
            .map(|(u, t)| UserCase {
                user: UserIdx(u as u32),
                test: t,
            })
            .collect();
        let kpis = evaluate(&probe, &cases, 3);
        assert_eq!(kpis.n_users, 200);
        let calls = probe.calls.get();
        assert!(calls >= 2, "expected several batch chunks, got {calls}");
        assert_eq!(
            probe.reuses.get(),
            calls - 1,
            "every chunk after the first must see the same pooled buffer"
        );
    }
}
