//! Beyond-accuracy metrics — the paper's future-work direction
//! ("metrics for evaluating the diversity and serendipity of the
//! recommendations", Section 7).
//!
//! All metrics operate on top-k lists and average over the evaluation
//! users:
//!
//! * **intra-list diversity** — `1 −` mean pairwise similarity of the
//!   recommended books' genre profiles (1 = every pair of recommendations
//!   from disjoint genres);
//! * **novelty** — mean self-information `−log₂ p(b)` of the recommended
//!   books under the training popularity distribution (recommending only
//!   blockbusters scores low);
//! * **serendipity** — share of *relevant* recommendations that are also
//!   *unexpected*: their top genre is outside the user's two most-read
//!   training genres;
//! * **genre coverage** — distinct top genres in the list divided by the
//!   list length.

use crate::metrics::UserCase;
use rm_core::Recommender;
use rm_dataset::ids::UserIdx;
use rm_dataset::interactions::Interactions;
use rm_dataset::Corpus;

/// Aggregated beyond-accuracy metrics at one `k`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BeyondAccuracy {
    /// List length.
    pub k: usize,
    /// Mean intra-list diversity in `[0, 1]`.
    pub diversity: f64,
    /// Mean novelty (bits); higher = deeper into the catalogue tail.
    pub novelty: f64,
    /// Mean serendipity in `[0, 1]` (share of relevant recommendations
    /// outside the user's dominant genres).
    pub serendipity: f64,
    /// Mean genre coverage in `(0, 1]`.
    pub genre_coverage: f64,
    /// Users evaluated.
    pub n_users: usize,
}

/// Genre-profile similarity of two books: probability mass they assign to
/// shared genres (generalised overlap; 1 when identical single-genre
/// profiles, 0 when disjoint).
#[must_use]
pub fn genre_similarity(corpus: &Corpus, a: u32, b: u32) -> f64 {
    let ga = &corpus.books[a as usize].genres;
    let gb = &corpus.books[b as usize].genres;
    let mut sim = 0.0f64;
    for &(g, pa) in ga {
        if let Some(&(_, pb)) = gb.iter().find(|&&(h, _)| h == g) {
            sim += f64::from(pa.min(pb));
        }
    }
    sim
}

/// Intra-list diversity of one recommendation list.
#[must_use]
pub fn intra_list_diversity(corpus: &Corpus, recs: &[u32]) -> f64 {
    if recs.len() < 2 {
        return 0.0;
    }
    let mut total = 0.0;
    let mut pairs = 0usize;
    for (i, &a) in recs.iter().enumerate() {
        for &b in &recs[i + 1..] {
            total += 1.0 - genre_similarity(corpus, a, b);
            pairs += 1;
        }
    }
    total / pairs as f64
}

/// Mean novelty (bits of self-information) of one list under the training
/// popularity distribution. Books never read in training get the maximum
/// (`log2(total + 1)` via add-one smoothing).
#[must_use]
pub fn novelty(book_counts: &[u64], recs: &[u32]) -> f64 {
    if recs.is_empty() {
        return 0.0;
    }
    let total: u64 = book_counts.iter().sum::<u64>().max(1);
    recs.iter()
        .map(|&b| {
            let p = (book_counts[b as usize] + 1) as f64 / (total + 1) as f64;
            -p.log2()
        })
        .sum::<f64>()
        / recs.len() as f64
}

/// The user's two most-read training genres (by top-genre counting).
fn dominant_genres(corpus: &Corpus, train: &Interactions, user: UserIdx) -> Vec<u8> {
    let mut counts = vec![0u32; corpus.genre_model.n_genres()];
    for &b in train.seen(user) {
        if let Some(&(g, _)) = corpus.books[b as usize]
            .genres
            .iter()
            .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
        {
            counts[g.0 as usize] += 1;
        }
    }
    let mut order: Vec<u8> = (0..counts.len() as u8).collect();
    order.sort_by_key(|&g| std::cmp::Reverse(counts[g as usize]));
    order.truncate(2);
    order.retain(|&g| counts[g as usize] > 0);
    order
}

/// Evaluates all beyond-accuracy metrics for a recommender.
#[must_use]
pub fn evaluate_beyond(
    rec: &dyn Recommender,
    corpus: &Corpus,
    train: &Interactions,
    cases: &[UserCase<'_>],
    k: usize,
) -> BeyondAccuracy {
    let book_counts = train.book_counts();
    let mut diversity = 0.0;
    let mut nov = 0.0;
    let mut serendipity = 0.0;
    let mut coverage = 0.0;
    let mut n_users = 0usize;

    for case in cases {
        if case.test.is_empty() {
            continue;
        }
        let recs = rec.recommend(case.user, k);
        if recs.is_empty() {
            continue;
        }
        n_users += 1;
        diversity += intra_list_diversity(corpus, &recs);
        nov += novelty(&book_counts, &recs);

        // Serendipity: relevant ∧ outside the user's dominant genres.
        let dominant = dominant_genres(corpus, train, case.user);
        let relevant: Vec<u32> = recs
            .iter()
            .copied()
            .filter(|b| case.test.binary_search(b).is_ok())
            .collect();
        if !relevant.is_empty() {
            let unexpected = relevant
                .iter()
                .filter(|&&b| {
                    corpus.books[b as usize]
                        .genres
                        .iter()
                        .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
                        .is_none_or(|&(g, _)| !dominant.contains(&g.0))
                })
                .count();
            serendipity += unexpected as f64 / relevant.len() as f64;
        }

        // Genre coverage: distinct top genres in the list.
        let mut genres: Vec<u8> = recs
            .iter()
            .filter_map(|&b| {
                corpus.books[b as usize]
                    .genres
                    .iter()
                    .max_by(|x, y| x.1.partial_cmp(&y.1).expect("finite"))
                    .map(|&(g, _)| g.0)
            })
            .collect();
        genres.sort_unstable();
        genres.dedup();
        coverage += genres.len() as f64 / recs.len() as f64;
    }

    let denom = n_users.max(1) as f64;
    BeyondAccuracy {
        k,
        diversity: diversity / denom,
        novelty: nov / denom,
        serendipity: serendipity / denom,
        genre_coverage: coverage / denom,
        n_users,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_dataset::corpus::{Book, Reading, Source, User};
    use rm_dataset::genre::{AggGenreId, GenreModel};
    use rm_dataset::ids::{AnobiiItemId, BctBookId, BookIdx, Day};

    fn book(genre: u8) -> Book {
        Book {
            title: "T".into(),
            authors: vec!["A".into()],
            plot: String::new(),
            keywords: vec![],
            genres: vec![(AggGenreId(genre), 1.0)],
            bct_id: BctBookId(0),
            anobii_id: AnobiiItemId(0),
        }
    }

    fn corpus() -> Corpus {
        Corpus {
            // Books 0-2 genre 0; books 3-4 genre 1; book 5 genre 2.
            books: vec![book(0), book(0), book(0), book(1), book(1), book(2)],
            users: vec![User {
                source: Source::Bct,
                raw_id: 0,
            }],
            readings: vec![
                Reading {
                    user: UserIdx(0),
                    book: BookIdx(0),
                    date: Day(0),
                },
                Reading {
                    user: UserIdx(0),
                    book: BookIdx(1),
                    date: Day(1),
                },
            ],
            genre_model: GenreModel::identity(),
        }
    }

    #[test]
    fn genre_similarity_overlap() {
        let c = corpus();
        assert_eq!(genre_similarity(&c, 0, 1), 1.0);
        assert_eq!(genre_similarity(&c, 0, 3), 0.0);
    }

    #[test]
    fn diversity_extremes() {
        let c = corpus();
        assert_eq!(intra_list_diversity(&c, &[0, 1, 2]), 0.0);
        assert_eq!(intra_list_diversity(&c, &[0, 3, 5]), 1.0);
        assert_eq!(intra_list_diversity(&c, &[0]), 0.0);
    }

    #[test]
    fn novelty_prefers_tail() {
        // Book 0 read 9 times, book 5 once.
        let counts = vec![9u64, 0, 0, 0, 0, 1];
        assert!(novelty(&counts, &[5]) > novelty(&counts, &[0]));
        assert_eq!(novelty(&counts, &[]), 0.0);
    }

    #[test]
    fn evaluate_beyond_on_fixed_recommender() {
        struct Fixed;
        impl Recommender for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn fit(&mut self, _t: &Interactions) {}
            fn score(&self, _u: UserIdx, _b: BookIdx) -> f32 {
                0.0
            }
            fn recommend(&self, _u: UserIdx, k: usize) -> Vec<u32> {
                vec![3, 5][..k.min(2)].to_vec()
            }
            fn rank_all(&self, u: UserIdx) -> Vec<u32> {
                self.recommend(u, 2)
            }
        }
        let c = corpus();
        let train = Interactions::from_corpus(&c);
        let test = [3u32, 4];
        let cases = [UserCase {
            user: UserIdx(0),
            test: &test,
        }];
        let b = evaluate_beyond(&Fixed, &c, &train, &cases, 2);
        assert_eq!(b.n_users, 1);
        // Recs {3, 5}: genres 1 and 2 → diversity 1, coverage 1.
        assert_eq!(b.diversity, 1.0);
        assert_eq!(b.genre_coverage, 1.0);
        // Relevant = {3}; user's dominant genre is 0 (read books 0, 1), so
        // the hit on genre 1 is serendipitous.
        assert_eq!(b.serendipity, 1.0);
        assert!(b.novelty > 0.0);
    }

    #[test]
    fn serendipity_zero_for_in_genre_hits() {
        struct InGenre;
        impl Recommender for InGenre {
            fn name(&self) -> &str {
                "in-genre"
            }
            fn fit(&mut self, _t: &Interactions) {}
            fn score(&self, _u: UserIdx, _b: BookIdx) -> f32 {
                0.0
            }
            fn recommend(&self, _u: UserIdx, _k: usize) -> Vec<u32> {
                vec![2]
            }
            fn rank_all(&self, u: UserIdx) -> Vec<u32> {
                self.recommend(u, 1)
            }
        }
        let c = corpus();
        let train = Interactions::from_corpus(&c);
        let test = [2u32];
        let cases = [UserCase {
            user: UserIdx(0),
            test: &test,
        }];
        let b = evaluate_beyond(&InGenre, &c, &train, &cases, 1);
        // The hit (book 2, genre 0) is inside the dominant genre.
        assert_eq!(b.serendipity, 0.0);
    }
}
