//! Bootstrap confidence intervals over evaluation users.
//!
//! The paper reports point KPIs; a reproduction should also say how firm a
//! comparison is. Per-user outcomes (hits@k, test size, first rank) are
//! computed once, then user indices are resampled with replacement —
//! making both single-system CIs and *paired* difference CIs (the right
//! tool for "BPR beats Closest Items") cheap: no model re-evaluation per
//! resample.

use crate::metrics::UserCase;
use rand::{Rng, RngExt};
use rm_core::Recommender;
use rm_util::rng::rng_from_seed;

/// Which KPI a bootstrap targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Users with Relevant Recommendations (Eq. 4).
    Urr,
    /// Average relevant recommendations (Eq. 5).
    Nrr,
    /// Precision (Eq. 6).
    Precision,
    /// Recall (Eq. 7).
    Recall,
    /// Average first-rank position.
    FirstRank,
}

/// Pre-computed per-user evaluation outcomes for one recommender.
#[derive(Debug, Clone)]
pub struct PerUserStats {
    /// Relevant recommendations in the top-k, per user.
    pub hits: Vec<u32>,
    /// Test-set size per user.
    pub test_sizes: Vec<u32>,
    /// First relevant rank per user (sentinel = ranking length + 1 —
    /// one past the end — when no test book appears).
    pub first_ranks: Vec<f64>,
    /// The list length.
    pub k: usize,
}

impl PerUserStats {
    /// Evaluates `rec` once per user, recording the per-user outcomes.
    #[must_use]
    pub fn collect(rec: &dyn Recommender, cases: &[UserCase<'_>], k: usize) -> Self {
        let mut hits = Vec::with_capacity(cases.len());
        let mut test_sizes = Vec::with_capacity(cases.len());
        let mut first_ranks = Vec::with_capacity(cases.len());
        for case in cases {
            if case.test.is_empty() {
                continue;
            }
            let ranking = rec.rank_all(case.user);
            let mut h = 0u32;
            let mut first = None;
            for (pos, b) in ranking.iter().enumerate() {
                if case.test.binary_search(b).is_ok() {
                    if pos < k {
                        h += 1;
                    }
                    if first.is_none() {
                        first = Some(pos + 1);
                    }
                    // Past k and first found: nothing else to learn.
                    if pos >= k {
                        break;
                    }
                }
            }
            hits.push(h);
            test_sizes.push(case.test.len() as u32);
            // Same miss sentinel as `metrics::accumulate`: one rank past
            // the end of the list.
            first_ranks.push(first.unwrap_or(ranking.len() + 1) as f64);
        }
        Self {
            hits,
            test_sizes,
            first_ranks,
            k,
        }
    }

    /// Number of evaluation users.
    #[must_use]
    pub fn len(&self) -> usize {
        self.hits.len()
    }

    /// True when no user was evaluated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.hits.is_empty()
    }

    /// The metric value over a subset of user indices (with repetitions —
    /// a bootstrap resample).
    #[must_use]
    pub fn metric_of(&self, metric: Metric, idx: &[usize]) -> f64 {
        let n = idx.len().max(1) as f64;
        match metric {
            Metric::Urr => idx.iter().filter(|&&i| self.hits[i] > 0).count() as f64 / n,
            Metric::Nrr => idx.iter().map(|&i| f64::from(self.hits[i])).sum::<f64>() / n,
            Metric::Precision => {
                idx.iter()
                    .map(|&i| f64::from(self.hits[i]) / self.k as f64)
                    .sum::<f64>()
                    / n
            }
            Metric::Recall => {
                idx.iter()
                    .map(|&i| f64::from(self.hits[i]) / f64::from(self.test_sizes[i]))
                    .sum::<f64>()
                    / n
            }
            Metric::FirstRank => idx.iter().map(|&i| self.first_ranks[i]).sum::<f64>() / n,
        }
    }

    /// The metric over all users (the point estimate).
    #[must_use]
    pub fn point(&self, metric: Metric) -> f64 {
        let idx: Vec<usize> = (0..self.len()).collect();
        self.metric_of(metric, &idx)
    }
}

/// A percentile bootstrap interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interval {
    /// Point estimate on the full user set.
    pub point: f64,
    /// Lower percentile bound.
    pub lo: f64,
    /// Upper percentile bound.
    pub hi: f64,
    /// Confidence level (e.g. 0.95).
    pub level: f64,
}

impl Interval {
    /// Whether the interval excludes zero (for difference intervals: the
    /// comparison is significant at the interval's level).
    #[must_use]
    pub fn excludes_zero(&self) -> bool {
        self.lo > 0.0 || self.hi < 0.0
    }
}

fn percentile_interval(mut samples: Vec<f64>, point: f64, level: f64) -> Interval {
    samples.sort_by(|a, b| a.partial_cmp(b).expect("finite bootstrap samples"));
    let alpha = (1.0 - level) / 2.0;
    let pick = |q: f64| {
        let pos = ((samples.len() - 1) as f64 * q).round() as usize;
        samples[pos]
    };
    Interval {
        point,
        lo: pick(alpha),
        hi: pick(1.0 - alpha),
        level,
    }
}

fn resample<R: Rng + ?Sized>(rng: &mut R, n: usize) -> Vec<usize> {
    (0..n).map(|_| rng.random_range(0..n)).collect()
}

/// Percentile bootstrap CI of one recommender's metric.
///
/// # Panics
///
/// Panics if `stats` is empty, `replicates == 0`, or `level ∉ (0, 1)`.
#[must_use]
pub fn bootstrap_ci(
    stats: &PerUserStats,
    metric: Metric,
    replicates: usize,
    seed: u64,
    level: f64,
) -> Interval {
    assert!(!stats.is_empty(), "no users to bootstrap");
    assert!(replicates > 0, "need at least one replicate");
    assert!(level > 0.0 && level < 1.0, "level out of range");
    let mut rng = rng_from_seed(seed);
    let samples: Vec<f64> = (0..replicates)
        .map(|_| stats.metric_of(metric, &resample(&mut rng, stats.len())))
        .collect();
    percentile_interval(samples, stats.point(metric), level)
}

/// Paired-difference bootstrap CI: `metric(a) − metric(b)` resampling the
/// *same* users for both systems. Both stats must come from the same case
/// list in the same order.
///
/// # Panics
///
/// Panics on length mismatch or invalid parameters.
#[must_use]
pub fn paired_difference_ci(
    a: &PerUserStats,
    b: &PerUserStats,
    metric: Metric,
    replicates: usize,
    seed: u64,
    level: f64,
) -> Interval {
    assert_eq!(
        a.len(),
        b.len(),
        "paired bootstrap needs identical user sets"
    );
    assert!(!a.is_empty(), "no users to bootstrap");
    assert!(replicates > 0, "need at least one replicate");
    assert!(level > 0.0 && level < 1.0, "level out of range");
    let mut rng = rng_from_seed(seed);
    let samples: Vec<f64> = (0..replicates)
        .map(|_| {
            let idx = resample(&mut rng, a.len());
            a.metric_of(metric, &idx) - b.metric_of(metric, &idx)
        })
        .collect();
    percentile_interval(samples, a.point(metric) - b.point(metric), level)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(hits: Vec<u32>) -> PerUserStats {
        let n = hits.len();
        PerUserStats {
            hits,
            test_sizes: vec![4; n],
            first_ranks: vec![10.0; n],
            k: 20,
        }
    }

    #[test]
    fn point_estimates_match_definitions() {
        let s = stats(vec![0, 1, 2, 0]);
        assert_eq!(s.point(Metric::Urr), 0.5);
        assert_eq!(s.point(Metric::Nrr), 0.75);
        assert!((s.point(Metric::Precision) - 0.75 / 20.0).abs() < 1e-12);
        assert_eq!(s.point(Metric::Recall), 0.75 / 4.0);
        assert_eq!(s.point(Metric::FirstRank), 10.0);
    }

    #[test]
    fn ci_contains_point_for_iid_data() {
        let s = stats((0..200).map(|i| u32::from(i % 3 == 0)).collect());
        let ci = bootstrap_ci(&s, Metric::Urr, 500, 7, 0.95);
        assert!(ci.lo <= ci.point && ci.point <= ci.hi);
        assert!(ci.hi - ci.lo < 0.2, "CI too wide: {ci:?}");
    }

    #[test]
    fn ci_is_deterministic_per_seed() {
        let s = stats((0..100).map(|i| u32::from(i % 2 == 0)).collect());
        let a = bootstrap_ci(&s, Metric::Nrr, 200, 1, 0.9);
        let b = bootstrap_ci(&s, Metric::Nrr, 200, 1, 0.9);
        assert_eq!(a, b);
        let c = bootstrap_ci(&s, Metric::Nrr, 200, 2, 0.9);
        assert_ne!(a, c);
    }

    #[test]
    fn paired_difference_detects_a_clear_gap() {
        // System A hits twice as often as B on the same users.
        let a = stats((0..300).map(|i| u32::from(i % 2 == 0)).collect());
        let b = stats((0..300).map(|i| u32::from(i % 4 == 0)).collect());
        let ci = paired_difference_ci(&a, &b, Metric::Urr, 500, 3, 0.95);
        assert!(ci.point > 0.2);
        assert!(ci.excludes_zero(), "gap should be significant: {ci:?}");
    }

    #[test]
    fn paired_difference_of_identical_systems_includes_zero() {
        let a = stats((0..300).map(|i| u32::from(i % 3 == 0)).collect());
        let ci = paired_difference_ci(&a, &a.clone(), Metric::Urr, 300, 4, 0.95);
        assert_eq!(ci.point, 0.0);
        assert!(!ci.excludes_zero());
    }

    #[test]
    fn collect_matches_evaluate() {
        use rm_dataset::ids::{BookIdx, UserIdx};
        use rm_dataset::interactions::Interactions;

        struct Fixed {
            train: Interactions,
        }
        impl Recommender for Fixed {
            fn name(&self) -> &str {
                "fixed"
            }
            fn fit(&mut self, _t: &Interactions) {}
            fn score(&self, _u: UserIdx, b: BookIdx) -> f32 {
                -(b.0 as f32)
            }
            fn recommend(&self, user: UserIdx, k: usize) -> Vec<u32> {
                let seen = self.train.seen(user);
                (0..self.train.n_books() as u32)
                    .filter(|b| seen.binary_search(b).is_err())
                    .take(k)
                    .collect()
            }
            fn rank_all(&self, user: UserIdx) -> Vec<u32> {
                self.recommend(user, self.train.n_books())
            }
        }
        let rec = Fixed {
            train: Interactions::from_pairs(1, 10, &[(UserIdx(0), BookIdx(0))]),
        };
        let test = [2u32, 9];
        let cases = [UserCase {
            user: UserIdx(0),
            test: &test,
        }];
        let stats = PerUserStats::collect(&rec, &cases, 3);
        let kpis = crate::metrics::evaluate(&rec, &cases, 3);
        assert_eq!(stats.point(Metric::Urr), kpis.urr);
        assert_eq!(stats.point(Metric::Nrr), kpis.nrr);
        assert!((stats.point(Metric::Recall) - kpis.recall).abs() < 1e-12);
        assert_eq!(stats.point(Metric::FirstRank), kpis.first_rank);
    }

    #[test]
    #[should_panic(expected = "identical user sets")]
    fn paired_mismatch_rejected() {
        let a = stats(vec![1, 0]);
        let b = stats(vec![1]);
        let _ = paired_difference_ci(&a, &b, Metric::Urr, 10, 0, 0.9);
    }
}
