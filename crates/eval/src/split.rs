//! Per-user train / validation / test splits (Section 5).
//!
//! "We use 20 % of the readings of each BCT user as test set. The remaining
//! part is further split into training and validation (80 % and 20 % of the
//! remaining readings for each user, respectively). All the Anobii data are
//! used for training (80 %) and validation (20 %), without a test set."
//!
//! Rounding rules (documented once, applied everywhere): per user,
//! `n_test = max(1, round(0.2·n))` for BCT users (so every evaluation
//! target has at least one test book), then `n_val = round(0.2·(n −
//! n_test))` (possibly 0), rest train. Assignment is a seeded per-user
//! shuffle, so splits are stable under changes elsewhere in the corpus.

use rand::seq::SliceRandom;
use rm_dataset::corpus::{Corpus, Source};
use rm_dataset::ids::UserIdx;
use rm_dataset::interactions::Interactions;
use rm_util::rng::SeedTree;

/// How readings are assigned to the three parts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Seeded per-user shuffle (the paper's protocol — its split is not
    /// described as chronological).
    #[default]
    Random,
    /// Chronological: each user's *latest* readings become test, the
    /// latest of the remainder validation. The right protocol for
    /// sequential recommenders, which must not peek at the future.
    Temporal,
}

/// Split fractions + seed. Defaults are the paper's.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SplitConfig {
    /// Fraction of each BCT user's readings held out for test.
    pub test_fraction: f64,
    /// Fraction of the *remaining* readings held out for validation.
    pub validation_fraction: f64,
    /// Assignment strategy.
    pub strategy: SplitStrategy,
    /// Shuffle seed (unused by the temporal strategy except for date
    /// ties, which keep corpus order).
    pub seed: u64,
}

impl Default for SplitConfig {
    fn default() -> Self {
        Self {
            test_fraction: 0.2,
            validation_fraction: 0.2,
            strategy: SplitStrategy::Random,
            seed: 0xD15C0,
        }
    }
}

/// The materialised split.
#[derive(Debug, Clone)]
pub struct Split {
    /// Training interactions over all users.
    pub train: Interactions,
    /// Per-user validation books (sorted).
    pub validation: Vec<Vec<u32>>,
    /// Per-user test books (sorted; empty for Anobii users).
    pub test: Vec<Vec<u32>>,
}

impl Split {
    /// Splits a corpus.
    #[must_use]
    pub fn of_corpus(corpus: &Corpus, config: &SplitConfig) -> Self {
        let tree = SeedTree::new(config.seed);
        let by_user = corpus.readings_by_user();
        let n_users = corpus.n_users();
        let mut train_pairs: Vec<(UserIdx, rm_dataset::ids::BookIdx)> = Vec::new();
        let mut validation = vec![Vec::new(); n_users];
        let mut test = vec![Vec::new(); n_users];

        for (u, readings) in by_user.iter().enumerate() {
            // Order determines assignment: the *last* positions become
            // test. Random strategy shuffles; temporal sorts by date so
            // the latest readings are held out.
            let books: Vec<u32> = match config.strategy {
                SplitStrategy::Random => {
                    let mut books: Vec<u32> = readings.iter().map(|r| r.book.0).collect();
                    let mut rng = tree.child_idx(u as u64).rng();
                    books.shuffle(&mut rng);
                    books
                }
                SplitStrategy::Temporal => {
                    let mut dated: Vec<(u32, u32)> =
                        readings.iter().map(|r| (r.date.0, r.book.0)).collect();
                    dated.sort_unstable();
                    // Reverse so the latest readings sit at the front
                    // (the positions the test split takes).
                    dated.into_iter().rev().map(|(_, b)| b).collect()
                }
            };
            let n = books.len();

            let is_bct = corpus.users[u].source == Source::Bct;
            let n_test = if is_bct && n > 0 {
                ((n as f64 * config.test_fraction).round() as usize)
                    .clamp(1, n.saturating_sub(1).max(1))
            } else {
                0
            };
            let remaining = n - n_test;
            let n_val = (remaining as f64 * config.validation_fraction).round() as usize;
            let n_val = n_val.min(remaining.saturating_sub(1));

            for (pos, &b) in books.iter().enumerate() {
                if pos < n_test {
                    test[u].push(b);
                } else if pos < n_test + n_val {
                    validation[u].push(b);
                } else {
                    train_pairs.push((UserIdx(u as u32), rm_dataset::ids::BookIdx(b)));
                }
            }
            test[u].sort_unstable();
            validation[u].sort_unstable();
        }

        Self {
            train: Interactions::from_pairs(n_users, corpus.n_books(), &train_pairs),
            validation,
            test,
        }
    }

    /// Number of users.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.train.n_users()
    }

    /// Number of books.
    #[must_use]
    pub fn n_books(&self) -> usize {
        self.train.n_books()
    }

    /// Total readings across the three parts.
    #[must_use]
    pub fn total_readings(&self) -> usize {
        self.train.nnz()
            + self.validation.iter().map(Vec::len).sum::<usize>()
            + self.test.iter().map(Vec::len).sum::<usize>()
    }

    /// Users with a non-empty test set (the evaluation targets).
    #[must_use]
    pub fn test_users(&self) -> Vec<UserIdx> {
        self.test
            .iter()
            .enumerate()
            .filter(|(_, t)| !t.is_empty())
            .map(|(u, _)| UserIdx(u as u32))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_dataset::corpus::{Book, Reading, User};
    use rm_dataset::genre::GenreModel;
    use rm_dataset::ids::{AnobiiItemId, BctBookId, BookIdx, Day};

    /// A corpus with one BCT user (20 readings) and one Anobii user (10).
    fn corpus() -> Corpus {
        let books: Vec<Book> = (0..30)
            .map(|i| Book {
                title: format!("B{i}"),
                authors: vec!["A".into()],
                plot: String::new(),
                keywords: vec![],
                genres: vec![],
                bct_id: BctBookId(i),
                anobii_id: AnobiiItemId(i),
            })
            .collect();
        let users = vec![
            User {
                source: Source::Bct,
                raw_id: 0,
            },
            User {
                source: Source::Anobii,
                raw_id: 1,
            },
        ];
        let mut readings = Vec::new();
        for b in 0..20u32 {
            readings.push(Reading {
                user: UserIdx(0),
                book: BookIdx(b),
                date: Day(b),
            });
        }
        for b in 20..30u32 {
            readings.push(Reading {
                user: UserIdx(1),
                book: BookIdx(b),
                date: Day(b),
            });
        }
        Corpus {
            books,
            users,
            readings,
            genre_model: GenreModel::identity(),
        }
    }

    #[test]
    fn fractions_match_paper() {
        let split = Split::of_corpus(&corpus(), &SplitConfig::default());
        // BCT user: 20 readings → 4 test, 16 remaining → 3 val (round 3.2),
        // 13 train.
        assert_eq!(split.test[0].len(), 4);
        assert_eq!(split.validation[0].len(), 3);
        assert_eq!(split.train.seen(UserIdx(0)).len(), 13);
        // Anobii user: 10 readings → 0 test, 2 val, 8 train.
        assert_eq!(split.test[1].len(), 0);
        assert_eq!(split.validation[1].len(), 2);
        assert_eq!(split.train.seen(UserIdx(1)).len(), 8);
    }

    #[test]
    fn parts_are_disjoint_and_complete() {
        let c = corpus();
        let split = Split::of_corpus(&c, &SplitConfig::default());
        assert_eq!(split.total_readings(), c.n_readings());
        for u in 0..2usize {
            let mut all: Vec<u32> = split.train.seen(UserIdx(u as u32)).to_vec();
            all.extend(&split.validation[u]);
            all.extend(&split.test[u]);
            all.sort_unstable();
            let mut expected: Vec<u32> = c.readings_by_user()[u].iter().map(|r| r.book.0).collect();
            expected.sort_unstable();
            assert_eq!(all, expected);
        }
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let c = corpus();
        let a = Split::of_corpus(&c, &SplitConfig::default());
        let b = Split::of_corpus(&c, &SplitConfig::default());
        assert_eq!(a.test, b.test);
        assert_eq!(a.validation, b.validation);
        let other = Split::of_corpus(
            &c,
            &SplitConfig {
                seed: 1,
                ..SplitConfig::default()
            },
        );
        assert_ne!(a.test, other.test);
    }

    #[test]
    fn test_users_are_bct_only() {
        let split = Split::of_corpus(&corpus(), &SplitConfig::default());
        assert_eq!(split.test_users(), vec![UserIdx(0)]);
    }

    #[test]
    fn tiny_bct_user_keeps_one_test_and_one_train() {
        let mut c = corpus();
        // Shrink BCT user to 2 readings.
        c.readings.retain(|r| r.user != UserIdx(0) || r.book.0 < 2);
        let split = Split::of_corpus(&c, &SplitConfig::default());
        assert_eq!(split.test[0].len(), 1);
        assert_eq!(split.train.seen(UserIdx(0)).len(), 1);
    }

    #[test]
    fn temporal_strategy_holds_out_the_latest_readings() {
        let c = corpus();
        let split = Split::of_corpus(
            &c,
            &SplitConfig {
                strategy: SplitStrategy::Temporal,
                ..SplitConfig::default()
            },
        );
        // BCT user read books 0..20 on days 0..20: the 4 latest (16..20)
        // are the test set, the next 3 latest validation.
        assert_eq!(split.test[0], vec![16, 17, 18, 19]);
        assert_eq!(split.validation[0], vec![13, 14, 15]);
        let train: Vec<u32> = split.train.seen(UserIdx(0)).to_vec();
        assert_eq!(train, (0..13).collect::<Vec<u32>>());
        // Every train reading predates every test reading.
        let max_train_day = train.iter().max().unwrap();
        let min_test_day = split.test[0].iter().min().unwrap();
        assert!(max_train_day < min_test_day);
    }

    #[test]
    fn temporal_strategy_is_seed_independent() {
        let c = corpus();
        let make = |seed| {
            Split::of_corpus(
                &c,
                &SplitConfig {
                    strategy: SplitStrategy::Temporal,
                    seed,
                    ..SplitConfig::default()
                },
            )
        };
        assert_eq!(make(1).test, make(2).test);
    }

    #[test]
    fn zero_fraction_config() {
        let c = corpus();
        let split = Split::of_corpus(
            &c,
            &SplitConfig {
                test_fraction: 0.0,
                validation_fraction: 0.0,
                ..SplitConfig::default()
            },
        );
        // test_fraction 0 still guarantees >= 1 test book per BCT user
        // (evaluation targets must be testable); validation is empty.
        assert_eq!(split.test[0].len(), 1);
        assert!(split.validation.iter().all(Vec::is_empty));
    }
}
