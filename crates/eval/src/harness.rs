//! End-to-end experiment context: corpus → split → trained recommenders,
//! with wall-clock timing.
//!
//! Every experiment runner in [`crate::experiments`] starts from a
//! [`Harness`]; the heavyweight artefacts (the trained BPR model, the
//! encoded catalogue) are built once in [`TrainedSuite`] and shared.
//! [`run_timed_pipeline`] runs the whole offline pipeline — datagen →
//! dataset prep → embed → train → eval — under a [`PipelineTimer`] whose
//! per-stage wall-clock readings come from the [`Clock`] abstraction, so
//! the stage report is exact (and deterministic) under a fake clock.

use crate::metrics::{evaluate, test_cases, Kpis, UserCase};
use crate::split::{Split, SplitConfig};
use rm_core::bpr::{Bpr, BprConfig};
use rm_core::closest::ClosestItems;
use rm_core::most_read::MostReadItems;
use rm_core::random::RandomItems;
use rm_core::Recommender;
use rm_datagen::Preset;
use rm_dataset::ids::UserIdx;
use rm_dataset::interactions::Interactions;
use rm_dataset::summary::SummaryFields;
use rm_dataset::Corpus;
use rm_embed::EncoderConfig;
use rm_util::clock::{Clock, MonotonicClock};
use rm_util::report::{fmt_f64, Table};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Corpus + split, the immutable context of one experiment campaign.
#[derive(Debug, Clone)]
pub struct Harness {
    /// The merged corpus.
    pub corpus: Corpus,
    /// The per-user split.
    pub split: Split,
}

impl Harness {
    /// Generates a synthetic corpus for `preset` and splits it with the
    /// paper's fractions. The single `seed` drives both stages (through
    /// independent derived streams).
    #[must_use]
    pub fn generate(seed: u64, preset: Preset) -> Self {
        let corpus = rm_datagen::generate_corpus(seed, preset);
        let split = Split::of_corpus(
            &corpus,
            &SplitConfig {
                seed: rm_util::rng::derive_seed_str(seed, "split"),
                ..SplitConfig::default()
            },
        );
        Self { corpus, split }
    }

    /// Wraps an existing corpus.
    #[must_use]
    pub fn from_corpus(corpus: Corpus, split_config: &SplitConfig) -> Self {
        let split = Split::of_corpus(&corpus, split_config);
        Self { corpus, split }
    }

    /// The evaluation cases (BCT users with a test set), in the full
    /// corpus index space.
    #[must_use]
    pub fn test_cases(&self) -> Vec<UserCase<'_>> {
        test_cases(&self.split)
    }

    /// Training-history size of each evaluation case (aligned with
    /// [`Harness::test_cases`]).
    #[must_use]
    pub fn test_case_histories(&self) -> Vec<u64> {
        self.test_cases()
            .iter()
            .map(|c| self.split.train.seen(c.user).len() as u64)
            .collect()
    }

    /// Fits a recommender, returning the wall-clock training time.
    pub fn fit_timed(&self, rec: &mut dyn Recommender) -> Duration {
        let t0 = Instant::now();
        rec.fit(&self.split.train);
        t0.elapsed()
    }

    /// Mean per-user recommendation latency at list length `k`, over at
    /// most `sample` evaluation users.
    #[must_use]
    pub fn recommendation_time(&self, rec: &dyn Recommender, k: usize, sample: usize) -> Duration {
        let cases = self.test_cases();
        let users: Vec<UserIdx> = cases.iter().take(sample.max(1)).map(|c| c.user).collect();
        if users.is_empty() {
            return Duration::ZERO;
        }
        let t0 = Instant::now();
        for &u in &users {
            std::hint::black_box(rec.recommend(u, k));
        }
        t0.elapsed() / u32::try_from(users.len()).expect("sample fits u32")
    }

    /// Builds and fits the BCT-only BPR variant: training restricted to
    /// BCT users (renumbered), as in the paper's *BPR (BCT only)* row.
    /// Returns the model and the evaluation cases re-indexed into its
    /// local user space.
    #[must_use]
    pub fn bct_only_bpr(&self, config: BprConfig) -> (Bpr, Vec<UserCase<'_>>) {
        let bct_users = self.corpus.bct_users();
        let local_train: Interactions = self.split.train.select_users(&bct_users);
        let mut bpr = Bpr::new(config);
        bpr.fit(&local_train);
        let cases: Vec<UserCase<'_>> = bct_users
            .iter()
            .enumerate()
            .filter(|(_, u)| !self.split.test[u.index()].is_empty())
            .map(|(local, u)| UserCase {
                user: UserIdx(local as u32),
                test: &self.split.test[u.index()],
            })
            .collect();
        (bpr, cases)
    }
}

/// The recommenders of Table 1, trained once and shared across
/// experiments.
pub struct TrainedSuite {
    /// Random Items baseline.
    pub random: RandomItems,
    /// Most Read Items baseline.
    pub most_read: MostReadItems,
    /// Closest Items (content-based) on the paper's best metadata summary.
    pub closest: ClosestItems,
    /// BPR (collaborative filtering).
    pub bpr: Bpr,
    /// Wall-clock training time of each, in suite order
    /// (random, most_read, closest, bpr).
    pub fit_times: [Duration; 4],
}

impl TrainedSuite {
    /// Trains the full suite. `fields` is the Closest Items metadata
    /// summary (the paper's best is authors+genres).
    #[must_use]
    pub fn train(
        harness: &Harness,
        bpr_config: BprConfig,
        fields: SummaryFields,
        seed: u64,
    ) -> Self {
        let mut timer = PipelineTimer::real();
        Self::train_timed(harness, bpr_config, fields, seed, &mut timer)
    }

    /// [`TrainedSuite::train`] with the catalogue-embedding and
    /// model-fitting stages recorded on `timer` (as `embed` and `train`).
    #[must_use]
    pub fn train_timed(
        harness: &Harness,
        bpr_config: BprConfig,
        fields: SummaryFields,
        seed: u64,
        timer: &mut PipelineTimer,
    ) -> Self {
        let mut closest = timer.time("embed", || {
            ClosestItems::from_corpus(&harness.corpus, fields, EncoderConfig::default())
        });
        timer.time("train", || {
            let mut random = RandomItems::new(rm_util::rng::derive_seed_str(seed, "random-rec"));
            let mut most_read = MostReadItems::new();
            let mut bpr = Bpr::new(bpr_config);
            let fit_times = [
                harness.fit_timed(&mut random),
                harness.fit_timed(&mut most_read),
                harness.fit_timed(&mut closest),
                harness.fit_timed(&mut bpr),
            ];
            Self {
                random,
                most_read,
                closest,
                bpr,
                fit_times,
            }
        })
    }
}

/// Per-stage wall-clock timing of the offline pipeline, read through the
/// [`Clock`] abstraction (deterministic under a fake clock).
#[derive(Debug)]
pub struct PipelineTimer {
    clock: Arc<dyn Clock>,
    stages: Vec<(&'static str, Duration)>,
}

impl PipelineTimer {
    /// A timer reading `clock`.
    #[must_use]
    pub fn new(clock: Arc<dyn Clock>) -> Self {
        Self {
            clock,
            stages: Vec::new(),
        }
    }

    /// A timer on the real monotonic clock.
    #[must_use]
    pub fn real() -> Self {
        Self::new(Arc::new(MonotonicClock::new()))
    }

    /// Runs `stage`, appending its elapsed clock time to the record.
    pub fn time<T>(&mut self, stage: &'static str, f: impl FnOnce() -> T) -> T {
        let t0 = self.clock.now();
        let out = f();
        let elapsed = self.clock.now().saturating_sub(t0);
        self.stages.push((stage, elapsed));
        out
    }

    /// The recorded stages, in execution order.
    #[must_use]
    pub fn stages(&self) -> &[(&'static str, Duration)] {
        &self.stages
    }

    /// Total time across all recorded stages.
    #[must_use]
    pub fn total(&self) -> Duration {
        self.stages.iter().map(|(_, d)| *d).sum()
    }

    /// The stage report: per-stage time and share of the total.
    #[must_use]
    pub fn table(&self) -> Table {
        let total = self.total().as_secs_f64();
        let mut t = Table::new(["stage", "seconds", "share"]);
        for (stage, d) in &self.stages {
            let secs = d.as_secs_f64();
            let share = if total > 0.0 { secs / total } else { 0.0 };
            t.push_row([
                (*stage).to_owned(),
                fmt_f64(secs, 3),
                format!("{}%", fmt_f64(share * 100.0, 1)),
            ]);
        }
        t.push_row(["total".to_owned(), fmt_f64(total, 3), "100.0%".to_owned()]);
        t
    }
}

/// Output of [`run_timed_pipeline`]: the trained context plus the KPI
/// row of each suite model and the stage timings that produced them.
pub struct TimedPipeline {
    /// Corpus + split.
    pub harness: Harness,
    /// The four trained recommenders.
    pub suite: TrainedSuite,
    /// KPIs at the requested `k`, in suite order
    /// (random, most_read, closest, bpr).
    pub kpis: [Kpis; 4],
    /// Stage timings: datagen → dataset_prep → embed → train → eval.
    pub timer: PipelineTimer,
}

/// Runs the full offline pipeline — synthetic corpus generation, dataset
/// preparation (split), catalogue embedding, model training, and
/// evaluation at `k` — with each stage timed on `clock`.
#[must_use]
pub fn run_timed_pipeline(
    seed: u64,
    preset: Preset,
    bpr_config: BprConfig,
    fields: SummaryFields,
    k: usize,
    clock: Arc<dyn Clock>,
) -> TimedPipeline {
    let mut timer = PipelineTimer::new(clock);
    let corpus = timer.time("datagen", || rm_datagen::generate_corpus(seed, preset));
    let harness = timer.time("dataset_prep", || {
        Harness::from_corpus(
            corpus,
            &SplitConfig {
                seed: rm_util::rng::derive_seed_str(seed, "split"),
                ..SplitConfig::default()
            },
        )
    });
    let suite = TrainedSuite::train_timed(&harness, bpr_config, fields, seed, &mut timer);
    let kpis = timer.time("eval", || {
        let cases = harness.test_cases();
        [
            evaluate(&suite.random, &cases, k),
            evaluate(&suite.most_read, &cases, k),
            evaluate(&suite.closest, &cases, k),
            evaluate(&suite.bpr, &cases, k),
        ]
    });
    TimedPipeline {
        harness,
        suite,
        kpis,
        timer,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_dataset::corpus::Source;

    fn harness() -> Harness {
        Harness::generate(11, Preset::Tiny)
    }

    #[test]
    fn generate_produces_consistent_context() {
        let h = harness();
        assert!(h.corpus.n_books() > 0, "tiny corpus should survive pruning");
        assert_eq!(h.split.n_users(), h.corpus.n_users());
        assert_eq!(h.split.n_books(), h.corpus.n_books());
        // Every test case belongs to a BCT user.
        for c in h.test_cases() {
            assert_eq!(h.corpus.users[c.user.index()].source, Source::Bct);
        }
    }

    #[test]
    fn histories_align_with_cases() {
        let h = harness();
        let cases = h.test_cases();
        let hist = h.test_case_histories();
        assert_eq!(cases.len(), hist.len());
        for (c, &n) in cases.iter().zip(&hist) {
            assert_eq!(h.split.train.seen(c.user).len() as u64, n);
        }
    }

    #[test]
    fn bct_only_variant_maps_users() {
        let h = harness();
        let (bpr, cases) = h.bct_only_bpr(BprConfig {
            factors: 4,
            epochs: 2,
            ..BprConfig::default()
        });
        assert!(!cases.is_empty());
        let n_bct = h.corpus.bct_users().len();
        for c in &cases {
            assert!(c.user.index() < n_bct);
            // Recommendations exist in the local space.
            let recs = bpr.recommend(c.user, 3);
            assert!(recs.len() <= 3);
        }
    }

    #[test]
    fn pipeline_timer_is_deterministic_under_fake_clock() {
        use rm_util::clock::FakeClock;
        let clock = Arc::new(FakeClock::new());
        let mut timer = PipelineTimer::new(Arc::clone(&clock) as Arc<dyn Clock>);
        let out = timer.time("datagen", || {
            clock.advance(Duration::from_millis(30));
            7u32
        });
        assert_eq!(out, 7);
        timer.time("train", || clock.advance(Duration::from_millis(70)));
        assert_eq!(
            timer.stages(),
            &[
                ("datagen", Duration::from_millis(30)),
                ("train", Duration::from_millis(70)),
            ]
        );
        assert_eq!(timer.total(), Duration::from_millis(100));
        let table = timer.table().render();
        for needle in ["datagen", "train", "total", "30.0%", "70.0%", "100.0%"] {
            assert!(table.contains(needle), "missing {needle} in:\n{table}");
        }
    }

    #[test]
    fn timed_pipeline_covers_every_stage_in_order() {
        let result = run_timed_pipeline(
            11,
            Preset::Tiny,
            BprConfig {
                factors: 4,
                epochs: 2,
                ..BprConfig::default()
            },
            SummaryFields::BEST,
            5,
            Arc::new(MonotonicClock::new()),
        );
        let stages: Vec<&str> = result.timer.stages().iter().map(|(s, _)| *s).collect();
        assert_eq!(
            stages,
            ["datagen", "dataset_prep", "embed", "train", "eval"]
        );
        for kpi in &result.kpis {
            assert!(kpi.n_users > 0);
        }
        // The timed path trains the same suite as the plain one.
        let plain = TrainedSuite::train(
            &result.harness,
            BprConfig {
                factors: 4,
                epochs: 2,
                ..BprConfig::default()
            },
            SummaryFields::BEST,
            11,
        );
        let cases = result.harness.test_cases();
        assert_eq!(
            crate::metrics::evaluate(&plain.bpr, &cases, 5),
            crate::metrics::evaluate(&result.suite.bpr, &cases, 5),
        );
    }

    #[test]
    fn suite_trains_and_times() {
        let h = harness();
        let suite = TrainedSuite::train(
            &h,
            BprConfig {
                factors: 4,
                epochs: 2,
                ..BprConfig::default()
            },
            SummaryFields::BEST,
            7,
        );
        let cases = h.test_cases();
        let k = crate::metrics::evaluate(&suite.bpr, &cases, 5);
        assert!(k.n_users > 0);
        assert!(suite.fit_times[3] > Duration::ZERO);
        let latency = h.recommendation_time(&suite.closest, 5, 10);
        assert!(latency > Duration::ZERO);
    }
}
