//! User grouping by training-history size (Section 6.1 / Fig. 4).
//!
//! The paper buckets evaluation users by the number of their books in the
//! training set, choosing interval bins "to have approximately the same
//! number of users in each group" (its bins: < 8, 8–10, 11–16, 17–100).

use crate::metrics::{evaluate, Kpis, UserCase};
use rm_core::Recommender;

/// A half-open bin `[lo, hi]` (inclusive bounds, as the paper labels them).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistoryBin {
    /// Smallest training-history size in the bin.
    pub lo: u64,
    /// Largest training-history size in the bin.
    pub hi: u64,
}

impl HistoryBin {
    /// Whether a history size falls in this bin.
    #[must_use]
    pub fn contains(&self, n: u64) -> bool {
        (self.lo..=self.hi).contains(&n)
    }

    /// The paper-style label, e.g. `"<8"` or `"8-10"`.
    #[must_use]
    pub fn label(&self, first: bool) -> String {
        if first {
            format!("<{}", self.hi + 1)
        } else {
            format!("{}-{}", self.lo, self.hi)
        }
    }
}

/// Splits `histories` (training-readings count per evaluation user) into
/// `n_bins` bins of approximately equal population. Returns the bins in
/// ascending order; adjacent duplicates collapse, so fewer bins can come
/// back for very concentrated distributions.
///
/// # Panics
///
/// Panics if `histories` is empty or `n_bins == 0`.
#[must_use]
pub fn equal_population_bins(histories: &[u64], n_bins: usize) -> Vec<HistoryBin> {
    assert!(!histories.is_empty(), "no histories to bin");
    assert!(n_bins > 0, "need at least one bin");
    let mut sorted = histories.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let mut bins = Vec::with_capacity(n_bins);
    let mut lo = sorted[0];
    for b in 0..n_bins {
        let end = ((b + 1) * n / n_bins).min(n) - 1;
        let hi = sorted[end];
        if b == n_bins - 1 {
            bins.push(HistoryBin {
                lo,
                hi: sorted[n - 1],
            });
        } else if hi >= lo {
            // Next bin starts just above this bin's upper bound.
            bins.push(HistoryBin { lo, hi });
            lo = hi + 1;
        }
        // hi < lo happens when a boundary value spans multiple quantiles;
        // the bin is skipped (collapsed into the previous one).
    }
    // Remove degenerate trailing bins (hi < lo).
    bins.retain(|b| b.hi >= b.lo);
    bins
}

/// Result of a per-bin evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedKpis {
    /// The bin.
    pub bin: HistoryBin,
    /// Users in the bin.
    pub n_users: usize,
    /// KPIs over the bin's users.
    pub kpis: Kpis,
}

/// Evaluates a recommender per history bin at one `k`.
///
/// `histories[i]` must be the training-history size of `cases[i]`.
///
/// # Panics
///
/// Panics if the two slices differ in length.
#[must_use]
pub fn evaluate_by_bin(
    rec: &dyn Recommender,
    cases: &[UserCase<'_>],
    histories: &[u64],
    bins: &[HistoryBin],
    k: usize,
) -> Vec<BinnedKpis> {
    assert_eq!(cases.len(), histories.len(), "cases/histories mismatch");
    bins.iter()
        .map(|&bin| {
            let subset: Vec<UserCase<'_>> = cases
                .iter()
                .zip(histories)
                .filter(|(_, &h)| bin.contains(h))
                .map(|(c, _)| c.clone())
                .collect();
            let kpis = evaluate(rec, &subset, k);
            BinnedKpis {
                bin,
                n_users: kpis.n_users,
                kpis,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_have_equal_population() {
        let histories: Vec<u64> = (1..=100).collect();
        let bins = equal_population_bins(&histories, 4);
        assert_eq!(bins.len(), 4);
        for (i, bin) in bins.iter().enumerate() {
            let count = histories.iter().filter(|&&h| bin.contains(h)).count();
            assert_eq!(count, 25, "bin {i}: {bin:?}");
        }
        // Bins tile the range without gaps.
        for w in bins.windows(2) {
            assert_eq!(w[0].hi + 1, w[1].lo);
        }
    }

    #[test]
    fn paper_like_bins() {
        // A skewed distribution like the paper's: many small histories.
        let mut histories = Vec::new();
        for h in 1..8u64 {
            histories.extend(std::iter::repeat_n(h, 25));
        }
        for h in 8..=10 {
            histories.extend(std::iter::repeat_n(h, 60));
        }
        for h in 11..=16 {
            histories.extend(std::iter::repeat_n(h, 30));
        }
        for h in 17..=100 {
            histories.extend(std::iter::repeat_n(h, 2));
        }
        let bins = equal_population_bins(&histories, 4);
        assert_eq!(bins.len(), 4);
        assert_eq!(bins[0].lo, 1);
        assert_eq!(bins.last().unwrap().hi, 100);
    }

    #[test]
    fn duplicate_heavy_distribution_collapses_bins() {
        let histories = vec![5u64; 100];
        let bins = equal_population_bins(&histories, 4);
        assert_eq!(bins.len(), 1);
        assert_eq!(bins[0], HistoryBin { lo: 5, hi: 5 });
    }

    #[test]
    fn labels() {
        assert_eq!(HistoryBin { lo: 1, hi: 7 }.label(true), "<8");
        assert_eq!(HistoryBin { lo: 8, hi: 10 }.label(false), "8-10");
    }

    #[test]
    #[should_panic(expected = "no histories")]
    fn empty_histories_rejected() {
        let _ = equal_population_bins(&[], 3);
    }
}
