//! The §6 hyper-parameter grid search: latent factors × learning rate,
//! selected by URR on the validation set.
//!
//! The paper reports L = 20 and learning rate 0.2 as the winning point.
//! Validation URR is computed over the BCT users' validation books (the
//! recommendation targets), at the application's k = 20.

use crate::harness::Harness;
use crate::metrics::{default_threads, evaluate_parallel, validation_cases};
use rm_core::bpr::BprConfig;
use rm_core::grid::{GridOutcome, GridSearch};
use rm_dataset::corpus::Source;
use rm_util::report::Table;

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct GridExperiment {
    /// The underlying sweep outcome.
    pub outcome: GridOutcome,
    /// The k at which validation URR was computed.
    pub k: usize,
}

/// Runs the sweep.
#[must_use]
pub fn run(harness: &Harness, grid: &GridSearch, base: &BprConfig, k: usize) -> GridExperiment {
    // Validation cases restricted to BCT users (the targets).
    let all_cases = validation_cases(&harness.split);
    let cases: Vec<_> = all_cases
        .into_iter()
        .filter(|c| harness.corpus.users[c.user.index()].source == Source::Bct)
        .collect();
    let outcome = grid.run(base, &harness.split.train, |bpr| {
        evaluate_parallel(bpr, &cases, k, default_threads()).urr
    });
    GridExperiment { outcome, k }
}

impl GridExperiment {
    /// Renders the sweep matrix.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["latent factors", "learning rate", "validation URR"]);
        for p in &self.outcome.points {
            t.push_row([
                p.factors.to_string(),
                format!("{}", p.learning_rate),
                format!("{:.4}", p.score),
            ]);
        }
        t
    }

    /// `factors,learning_rate,urr` CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("factors,learning_rate,urr\n");
        for p in &self.outcome.points {
            out.push_str(&format!(
                "{},{},{:.6}\n",
                p.factors, p.learning_rate, p.score
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_datagen::Preset;

    #[test]
    fn sweep_selects_a_point() {
        let h = Harness::generate(13, Preset::Tiny);
        let grid = GridSearch {
            factors: vec![4, 8],
            learning_rates: vec![0.1, 0.2],
        };
        let base = BprConfig {
            epochs: 4,
            ..BprConfig::default()
        };
        let e = run(&h, &grid, &base, 10);
        assert_eq!(e.outcome.points.len(), 4);
        assert!(grid.factors.contains(&e.outcome.best.factors));
        assert!(e
            .outcome
            .points
            .iter()
            .all(|p| (0.0..=1.0).contains(&p.score)));
        assert_eq!(e.table().len(), 4);
    }
}
