//! Design-choice ablations for the CF model (DESIGN.md §6): the WARP
//! sampling variant versus plain sigmoid BPR, across latent-factor
//! budgets. The paper uses WARP on Rendle's BPR objective; this ablation
//! quantifies what that choice buys on the same corpus.

use super::kpi;
use crate::harness::Harness;
use crate::metrics::{default_threads, evaluate_parallel, Kpis};
use rm_core::bpr::{Bpr, BprConfig, Loss, NegativeSampling};
use rm_util::report::Table;

/// One (loss, sampling, factors) cell.
#[derive(Debug, Clone, PartialEq)]
pub struct Cell {
    /// Update rule.
    pub loss: Loss,
    /// Negative-candidate distribution.
    pub sampling: NegativeSampling,
    /// Latent factors.
    pub factors: usize,
    /// KPIs at the experiment's k.
    pub kpis: Kpis,
    /// Training wall-clock seconds.
    pub train_seconds: f64,
}

/// The ablation result.
#[derive(Debug, Clone, PartialEq)]
pub struct Ablation {
    /// List length.
    pub k: usize,
    /// All cells, loss-major.
    pub cells: Vec<Cell>,
}

/// Runs the ablation over both losses and the given factor counts, with
/// uniform negative sampling, plus one popularity-sampled WARP cell per
/// factor count (the implicit-feedback refinement).
#[must_use]
pub fn run(harness: &Harness, base: &BprConfig, factor_counts: &[usize], k: usize) -> Ablation {
    let cases = harness.test_cases();
    let mut cells = Vec::new();
    let mut variants: Vec<(Loss, NegativeSampling)> = vec![
        (Loss::Warp, NegativeSampling::Uniform),
        (Loss::Bpr, NegativeSampling::Uniform),
        (Loss::Warp, NegativeSampling::Popularity { alpha: 0.5 }),
    ];
    variants.dedup();
    for (loss, sampling) in variants {
        for &factors in factor_counts {
            let mut model = Bpr::new(BprConfig {
                loss,
                factors,
                negative_sampling: sampling,
                ..base.clone()
            });
            let t = harness.fit_timed(&mut model);
            cells.push(Cell {
                loss,
                sampling,
                factors,
                kpis: evaluate_parallel(&model, &cases, k, default_threads()),
                train_seconds: t.as_secs_f64(),
            });
        }
    }
    Ablation { k, cells }
}

impl Ablation {
    /// Renders the ablation matrix.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "loss",
            "negatives",
            "L",
            "URR",
            "NRR",
            "R",
            "FR",
            "train (s)",
        ]);
        for cell in &self.cells {
            t.push_row([
                match cell.loss {
                    Loss::Warp => "WARP".to_owned(),
                    Loss::Bpr => "sigmoid".to_owned(),
                },
                match cell.sampling {
                    NegativeSampling::Uniform => "uniform".to_owned(),
                    NegativeSampling::Popularity { alpha } => format!("pop^{alpha}"),
                },
                cell.factors.to_string(),
                kpi(cell.kpis.urr),
                kpi(cell.kpis.nrr),
                kpi(cell.kpis.recall),
                format!("{:.0}", cell.kpis.first_rank),
                format!("{:.2}", cell.train_seconds),
            ]);
        }
        t
    }

    /// `loss,sampling,factors,urr,nrr,recall,first_rank,train_seconds` CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out =
            String::from("loss,sampling,factors,urr,nrr,recall,first_rank,train_seconds\n");
        for cell in &self.cells {
            out.push_str(&format!(
                "{:?},{:?},{},{:.6},{:.6},{:.6},{:.2},{:.3}\n",
                cell.loss,
                cell.sampling,
                cell.factors,
                cell.kpis.urr,
                cell.kpis.nrr,
                cell.kpis.recall,
                cell.kpis.first_rank,
                cell.train_seconds
            ));
        }
        out
    }

    /// The best cell of a loss by NRR.
    #[must_use]
    pub fn best_of(&self, loss: Loss) -> Option<&Cell> {
        self.cells
            .iter()
            .filter(|c| c.loss == loss)
            .max_by(|a, b| a.kpis.nrr.partial_cmp(&b.kpis.nrr).expect("finite"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_datagen::Preset;

    #[test]
    fn ablation_covers_the_grid() {
        let h = Harness::generate(19, Preset::Tiny);
        let base = BprConfig {
            epochs: 5,
            ..BprConfig::default()
        };
        let a = run(&h, &base, &[4, 8], 10);
        assert_eq!(a.cells.len(), 6);
        assert!(a.best_of(Loss::Warp).is_some());
        assert!(a.best_of(Loss::Bpr).is_some());
        for c in &a.cells {
            assert!(c.train_seconds > 0.0);
            assert!((0.0..=1.0).contains(&c.kpis.urr));
        }
        assert_eq!(a.table().len(), 6);
    }
}
