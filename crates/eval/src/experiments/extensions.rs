//! Extension experiment: the paper's future-work algorithms and metrics.
//!
//! Evaluates the full recommender line-up — the paper's four plus
//! item-kNN (the classic implicit-CF baseline), the sequential
//! recommender (Section 7's pointer to sequential recsys), and the CB+CF
//! hybrid blend — on both the accuracy KPIs and the beyond-accuracy
//! metrics (diversity, novelty, serendipity, coverage) the paper names as
//! future evaluation dimensions.

use super::kpi;
use crate::beyond::{evaluate_beyond, BeyondAccuracy};
use crate::harness::{Harness, TrainedSuite};
use crate::metrics::{default_threads, evaluate_parallel, Kpis};
use rm_core::bpr::Bpr;
use rm_core::closest::ClosestItems;
use rm_core::hybrid::Blend;
use rm_core::item_knn::{ItemKnn, ItemKnnConfig};
use rm_core::markov::{SequentialConfig, SequentialItems};
use rm_core::Recommender;
use rm_dataset::summary::SummaryFields;
use rm_embed::EncoderConfig;
use rm_util::report::Table;

/// One recommender's combined accuracy + beyond-accuracy row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Display name.
    pub name: String,
    /// Accuracy KPIs at the experiment's k.
    pub kpis: Kpis,
    /// Beyond-accuracy metrics at the same k.
    pub beyond: BeyondAccuracy,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Extensions {
    /// List length.
    pub k: usize,
    /// One row per recommender.
    pub rows: Vec<Row>,
}

/// Runs the extension line-up. The hybrid blends BPR with Closest Items
/// at `hybrid_weight` (share of BPR).
#[must_use]
pub fn run(harness: &Harness, suite: &TrainedSuite, k: usize, hybrid_weight: f32) -> Extensions {
    let cases = harness.test_cases();
    let train = &harness.split.train;

    let mut sequential = SequentialItems::from_corpus(&harness.corpus, SequentialConfig::default());
    sequential.fit(train);

    let mut item_knn = ItemKnn::new(ItemKnnConfig::default());
    item_knn.fit(train);

    let mut hybrid = Blend::new(
        Bpr::new(suite.bpr.config().clone()),
        ClosestItems::from_corpus(
            &harness.corpus,
            SummaryFields::BEST,
            EncoderConfig::default(),
        ),
        hybrid_weight,
    );
    hybrid.fit(train);

    let mut rows = Vec::new();
    for rec in [
        &suite.random as &(dyn Recommender + Sync),
        &suite.most_read,
        &suite.closest,
        &suite.bpr,
        &item_knn,
        &sequential,
        &hybrid,
    ] {
        rows.push(Row {
            name: rec.name().to_owned(),
            kpis: evaluate_parallel(rec, &cases, k, default_threads()),
            beyond: evaluate_beyond(rec, &harness.corpus, train, &cases, k),
        });
    }
    Extensions { k, rows }
}

impl Extensions {
    /// Renders the combined table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new([
            "",
            "URR",
            "NRR",
            "diversity",
            "novelty",
            "serendipity",
            "coverage",
        ]);
        for row in &self.rows {
            t.push_row([
                row.name.clone(),
                kpi(row.kpis.urr),
                kpi(row.kpis.nrr),
                kpi(row.beyond.diversity),
                format!("{:.1}", row.beyond.novelty),
                kpi(row.beyond.serendipity),
                kpi(row.beyond.genre_coverage),
            ]);
        }
        t
    }

    /// `name,urr,nrr,diversity,novelty,serendipity,coverage` CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("name,urr,nrr,diversity,novelty,serendipity,coverage\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.6},{:.6}\n",
                row.name,
                row.kpis.urr,
                row.kpis.nrr,
                row.beyond.diversity,
                row.beyond.novelty,
                row.beyond.serendipity,
                row.beyond.genre_coverage
            ));
        }
        out
    }

    /// Row lookup by name.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_core::bpr::BprConfig;
    use rm_datagen::Preset;

    fn quick() -> Extensions {
        let h = Harness::generate(17, Preset::Tiny);
        let suite = TrainedSuite::train(
            &h,
            BprConfig {
                factors: 6,
                epochs: 5,
                ..BprConfig::default()
            },
            SummaryFields::BEST,
            17,
        );
        run(&h, &suite, 10, 0.5)
    }

    #[test]
    fn seven_recommenders_evaluated() {
        let e = quick();
        assert_eq!(e.rows.len(), 7);
        assert!(e.row("Sequential Items").is_some());
        assert!(e.row("Hybrid Blend").is_some());
        assert!(e.row("Item kNN").is_some());
    }

    #[test]
    fn item_knn_beats_random() {
        let e = quick();
        assert!(
            e.row("Item kNN").unwrap().kpis.nrr > e.row("Random Items").unwrap().kpis.nrr,
            "item-kNN should learn the co-reading structure"
        );
    }

    #[test]
    fn sequential_beats_random() {
        let e = quick();
        assert!(
            e.row("Sequential Items").unwrap().kpis.nrr > e.row("Random Items").unwrap().kpis.nrr,
            "sequential should learn something"
        );
    }

    #[test]
    fn hybrid_is_competitive_with_components() {
        let e = quick();
        let hybrid = e.row("Hybrid Blend").unwrap().kpis.nrr;
        let best = e
            .row("BPR")
            .unwrap()
            .kpis
            .nrr
            .max(e.row("Closest Items").unwrap().kpis.nrr);
        assert!(
            hybrid > 0.5 * best,
            "hybrid {hybrid} vs best component {best}"
        );
    }

    #[test]
    fn popularity_recommender_has_lowest_novelty() {
        let e = quick();
        let most_read = e.row("Most Read Items").unwrap().beyond.novelty;
        let random = e.row("Random Items").unwrap().beyond.novelty;
        assert!(
            most_read < random,
            "MostRead novelty {most_read} vs random {random}"
        );
    }

    #[test]
    fn metrics_in_range_and_renderable() {
        let e = quick();
        for row in &e.rows {
            assert!((0.0..=1.0).contains(&row.beyond.diversity), "{}", row.name);
            assert!(
                (0.0..=1.0).contains(&row.beyond.serendipity),
                "{}",
                row.name
            );
            assert!(
                (0.0..=1.0 + 1e-9).contains(&row.beyond.genre_coverage),
                "{}",
                row.name
            );
            assert!(row.beyond.novelty >= 0.0);
        }
        assert_eq!(e.table().len(), 7);
        assert_eq!(e.to_csv().lines().count(), 8);
    }
}
