//! One runner per table / figure of the paper's evaluation (Section 6).
//!
//! Each module produces a structured result plus `render()` (the
//! human-readable table the paper prints) and `to_csv()` (the
//! machine-readable series a plot would consume). The `repro-*` binaries
//! in `rm-bench` are thin wrappers around these runners.
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table1`] | Table 1 — KPIs of all recommenders at k = 20 |
//! | [`table2`] | Table 2 — training / recommendation wall-clock time |
//! | [`fig1`] | Fig. 1 — CDFs of readings per user and per book |
//! | [`fig2`] | Fig. 2 — genre shares of readings |
//! | [`fig3`] | Fig. 3 — KPIs versus list length k |
//! | [`fig4`] | Fig. 4 — NRR by training-history bin |
//! | [`fig5`] | Fig. 5 — KPIs by metadata-summary composition |
//! | [`grid`] | §6 ¶1 — BPR hyper-parameter grid search |
//! | [`ablation`] | extension — WARP-vs-sigmoid loss and factor-count ablation |
//! | [`extensions`] | extension — future-work algorithms and beyond-accuracy metrics |

pub mod ablation;
pub mod extensions;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod grid;
pub mod table1;
pub mod table2;

use rm_util::report::fmt_f64;

/// Formats a KPI cell at the paper's two-decimal precision.
#[must_use]
pub(crate) fn kpi(v: f64) -> String {
    fmt_f64(v, 2)
}
