//! Fig. 1: CDFs of the readings per user and per book in the merged
//! corpus (log-scaled x-axis in the paper).

use crate::harness::Harness;
use rm_util::report::Table;
use rm_util::stats::Ecdf;

/// The two empirical CDFs.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig1 {
    /// CDF of readings per user.
    pub per_user: Ecdf,
    /// CDF of readings per book.
    pub per_book: Ecdf,
}

/// Computes the figure's series.
#[must_use]
pub fn run(harness: &Harness) -> Fig1 {
    let (per_user, per_book) = rm_dataset::stats::reading_cdfs(&harness.corpus);
    Fig1 { per_user, per_book }
}

impl Fig1 {
    /// A compact quantile table (the full step series goes to CSV).
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["quantile", "readings/user", "readings/book"]);
        for q in [0.25, 0.5, 0.75, 0.9, 0.99, 1.0] {
            t.push_row([
                format!("p{:.0}", q * 100.0),
                self.per_user.quantile(q).to_string(),
                self.per_book.quantile(q).to_string(),
            ]);
        }
        t
    }

    /// The full step series: `series,value,cdf` rows for both curves.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("series,value,cdf\n");
        for (v, p) in self.per_user.points() {
            out.push_str(&format!("user,{v},{p:.6}\n"));
        }
        for (v, p) in self.per_book.points() {
            out.push_str(&format!("book,{v},{p:.6}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_datagen::Preset;

    #[test]
    fn cdfs_cover_the_corpus() {
        let h = Harness::generate(6, Preset::Tiny);
        let f = run(&h);
        assert_eq!(f.per_user.sample_size(), h.corpus.n_users());
        assert_eq!(f.per_book.sample_size(), h.corpus.n_books());
        // Tiny preset: min 5 readings/user (applied after book pruning, so
        // it holds exactly). The book threshold (8) is applied *before*
        // user pruning in single-pass mode, so final counts can dip below
        // it — only positivity is guaranteed.
        assert!(f.per_user.quantile(0.01) >= 5);
        assert!(f.per_book.quantile(0.01) >= 1);
    }

    #[test]
    fn csv_has_both_series() {
        let h = Harness::generate(6, Preset::Tiny);
        let csv = run(&h).to_csv();
        assert!(csv.starts_with("series,value,cdf\n"));
        assert!(csv.contains("\nbook,"));
        assert!(csv.lines().count() > 3);
    }

    #[test]
    fn table_quantiles_monotone() {
        let h = Harness::generate(6, Preset::Tiny);
        let f = run(&h);
        assert!(f.per_user.quantile(1.0) >= f.per_user.quantile(0.5));
        assert_eq!(f.table().len(), 6);
    }
}
