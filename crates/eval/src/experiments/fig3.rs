//! Fig. 3: URR / NRR (panel a) and Precision / Recall (panel b) as the
//! number of recommended books k varies from 1 to 50, for Random Items,
//! Closest Items, and BPR.
//!
//! Expected shape: URR, NRR, R grow with k; P decreases with k; BPR above
//! Closest above Random at every k.

use super::kpi;
use crate::harness::{Harness, TrainedSuite};
use crate::metrics::{default_threads, evaluate_at_parallel, Kpis};
use rm_core::Recommender;
use rm_util::report::Table;

/// One algorithm's KPI series over k.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display name.
    pub name: String,
    /// KPIs, aligned with [`Fig3::ks`].
    pub kpis: Vec<Kpis>,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig3 {
    /// The evaluated k values.
    pub ks: Vec<usize>,
    /// Series for Random, Closest, BPR (paper's panel order).
    pub series: Vec<Series>,
}

/// Runs the sweep. `ks` defaults to `[1, 50]` stepped when empty.
#[must_use]
pub fn run(harness: &Harness, suite: &TrainedSuite, ks: &[usize]) -> Fig3 {
    let ks: Vec<usize> = if ks.is_empty() {
        (1..=50).collect()
    } else {
        ks.to_vec()
    };
    let cases = harness.test_cases();
    let series = [
        &suite.random as &(dyn Recommender + Sync),
        &suite.closest,
        &suite.bpr,
    ]
    .into_iter()
    .map(|rec| Series {
        name: rec.name().to_owned(),
        kpis: evaluate_at_parallel(rec, &cases, &ks, default_threads()),
    })
    .collect();
    Fig3 { ks, series }
}

impl Fig3 {
    /// Renders both panels at a subset of ks.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["algorithm", "k", "URR", "NRR", "P", "R"]);
        for s in &self.series {
            for (i, &k) in self.ks.iter().enumerate() {
                if self.ks.len() > 10 && ![1, 5, 10, 20, 30, 40, 50].contains(&k) {
                    continue;
                }
                let m = &s.kpis[i];
                t.push_row([
                    s.name.clone(),
                    k.to_string(),
                    kpi(m.urr),
                    kpi(m.nrr),
                    kpi(m.precision),
                    kpi(m.recall),
                ]);
            }
        }
        t
    }

    /// Full series CSV: `algorithm,k,urr,nrr,precision,recall`.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("algorithm,k,urr,nrr,precision,recall\n");
        for s in &self.series {
            for m in &s.kpis {
                out.push_str(&format!(
                    "{},{},{:.6},{:.6},{:.6},{:.6}\n",
                    s.name, m.k, m.urr, m.nrr, m.precision, m.recall
                ));
            }
        }
        out
    }

    /// The series of a given algorithm.
    #[must_use]
    pub fn series_of(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_core::bpr::BprConfig;
    use rm_datagen::Preset;
    use rm_dataset::summary::SummaryFields;

    fn fig() -> Fig3 {
        let h = Harness::generate(5, Preset::Tiny);
        let suite = TrainedSuite::train(
            &h,
            BprConfig {
                factors: 8,
                epochs: 8,
                ..BprConfig::default()
            },
            SummaryFields::BEST,
            5,
        );
        run(&h, &suite, &[1, 5, 10, 20])
    }

    #[test]
    fn monotone_in_k() {
        let f = fig();
        for s in &f.series {
            for w in s.kpis.windows(2) {
                assert!(w[1].urr >= w[0].urr - 1e-12, "{}: URR not monotone", s.name);
                assert!(w[1].nrr >= w[0].nrr - 1e-12, "{}: NRR not monotone", s.name);
                assert!(
                    w[1].recall >= w[0].recall - 1e-12,
                    "{}: R not monotone",
                    s.name
                );
            }
        }
    }

    #[test]
    fn has_three_series() {
        let f = fig();
        assert_eq!(f.series.len(), 3);
        assert!(f.series_of("BPR").is_some());
        assert!(f.series_of("Random Items").is_some());
        assert!(f.series_of("Closest Items").is_some());
    }

    #[test]
    fn fr_constant_across_k() {
        let f = fig();
        for s in &f.series {
            let fr0 = s.kpis[0].first_rank;
            assert!(s.kpis.iter().all(|m| (m.first_rank - fr0).abs() < 1e-9));
        }
    }

    #[test]
    fn csv_row_count() {
        let f = fig();
        assert_eq!(f.to_csv().lines().count(), 1 + 3 * 4);
    }
}
