//! Fig. 2: distribution of the genres in the readings of the merged
//! corpus (the paper reports Comics ≈ 44 %, Thriller ≈ 14 %,
//! Fantasy ≈ 12 %).

use crate::harness::Harness;
use rm_util::report::Table;

/// Genre shares, descending.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig2 {
    /// `(aggregated genre label, share of readings)`, descending.
    pub shares: Vec<(String, f64)>,
}

/// Computes the figure's series.
#[must_use]
pub fn run(harness: &Harness) -> Fig2 {
    Fig2 {
        shares: rm_dataset::stats::genre_shares(&harness.corpus),
    }
}

impl Fig2 {
    /// Renders the bar heights.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["genre", "share of readings"]);
        for (label, share) in &self.shares {
            t.push_row([label.clone(), format!("{:.1}%", share * 100.0)]);
        }
        t
    }

    /// `genre,share` CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("genre,share\n");
        for (label, share) in &self.shares {
            out.push_str(&format!("{},{share:.6}\n", label.replace(',', ";")));
        }
        out
    }

    /// Share of a genre whose label contains `needle` (case-sensitive).
    #[must_use]
    pub fn share_of(&self, needle: &str) -> f64 {
        self.shares
            .iter()
            .filter(|(l, _)| l.contains(needle))
            .map(|&(_, s)| s)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_datagen::Preset;

    fn fig() -> Fig2 {
        run(&Harness::generate(8, Preset::Tiny))
    }

    #[test]
    fn shares_are_descending_probabilities() {
        let f = fig();
        assert!(!f.shares.is_empty());
        let total: f64 = f.shares.iter().map(|&(_, s)| s).sum();
        // Genre probabilities are f32 and sum to 1 ± ~1e-6 per book.
        assert!(total <= 1.0 + 1e-4, "total {total}");
        for w in f.shares.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn comics_dominates_even_at_tiny_scale() {
        let f = fig();
        assert_eq!(f.shares[0].0, "Comics");
        assert!(f.share_of("Comics") > 0.2);
    }

    #[test]
    fn table_and_csv_render() {
        let f = fig();
        assert_eq!(f.table().len(), f.shares.len());
        assert!(f.to_csv().starts_with("genre,share\n"));
    }
}
