//! Fig. 4: NRR on the test set by number of training-set books per user,
//! at k = 20, for Random, Closest Items, and BPR.
//!
//! Bins are equal-population (the paper's: < 8, 8–10, 11–16, 17–100).
//! Expected shape: every algorithm improves with history (the Random curve
//! shows the pure test-size effect); Closest Items gains steeply with
//! history. In the paper, Closest additionally *overtakes* BPR in the top
//! bin while BPR stays nearly flat; on the synthetic corpus BPR keeps a
//! lead in every bin — a documented deviation (see EXPERIMENTS.md F4):
//! synthetic tastes are stationary enough that CF's per-reading accuracy
//! does not collapse for heavy readers the way the real data's does.

use crate::groups::{equal_population_bins, evaluate_by_bin, BinnedKpis, HistoryBin};
use crate::harness::{Harness, TrainedSuite};
use rm_core::Recommender;
use rm_util::report::Table;

/// One algorithm's per-bin NRR series.
#[derive(Debug, Clone, PartialEq)]
pub struct Series {
    /// Display name.
    pub name: String,
    /// Per-bin results, aligned with [`Fig4::bins`].
    pub binned: Vec<BinnedKpis>,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig4 {
    /// The history bins.
    pub bins: Vec<HistoryBin>,
    /// Series for Random, Closest, BPR.
    pub series: Vec<Series>,
    /// List length (paper: 20).
    pub k: usize,
}

/// Runs the experiment with `n_bins` equal-population bins.
#[must_use]
pub fn run(harness: &Harness, suite: &TrainedSuite, k: usize, n_bins: usize) -> Fig4 {
    let cases = harness.test_cases();
    let histories = harness.test_case_histories();
    let bins = equal_population_bins(&histories, n_bins);
    let series = [
        &suite.random as &(dyn Recommender + Sync),
        &suite.closest,
        &suite.bpr,
    ]
    .into_iter()
    .map(|rec| Series {
        name: rec.name().to_owned(),
        binned: evaluate_by_bin(rec, &cases, &histories, &bins, k),
    })
    .collect();
    Fig4 { bins, series, k }
}

impl Fig4 {
    /// Renders the bar chart's values.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut header = vec!["books in training set".to_owned(), "users".to_owned()];
        header.extend(self.series.iter().map(|s| format!("NRR {}", s.name)));
        let mut t = Table::new(header);
        for (i, bin) in self.bins.iter().enumerate() {
            let mut row = vec![
                bin.label(i == 0),
                self.series[0].binned[i].n_users.to_string(),
            ];
            row.extend(
                self.series
                    .iter()
                    .map(|s| format!("{:.2}", s.binned[i].kpis.nrr)),
            );
            t.push_row(row);
        }
        t
    }

    /// `algorithm,bin_lo,bin_hi,n_users,nrr` CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("algorithm,bin_lo,bin_hi,n_users,nrr\n");
        for s in &self.series {
            for b in &s.binned {
                out.push_str(&format!(
                    "{},{},{},{},{:.6}\n",
                    s.name, b.bin.lo, b.bin.hi, b.n_users, b.kpis.nrr
                ));
            }
        }
        out
    }

    /// The series of a given algorithm.
    #[must_use]
    pub fn series_of(&self, name: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_core::bpr::BprConfig;
    use rm_datagen::Preset;
    use rm_dataset::summary::SummaryFields;

    fn fig() -> Fig4 {
        let h = Harness::generate(9, Preset::Tiny);
        let suite = TrainedSuite::train(
            &h,
            BprConfig {
                factors: 8,
                epochs: 8,
                ..BprConfig::default()
            },
            SummaryFields::BEST,
            5,
        );
        run(&h, &suite, 10, 3)
    }

    #[test]
    fn bins_partition_all_users() {
        let f = fig();
        let total_users: usize = f.series[0].binned.iter().map(|b| b.n_users).sum();
        let h = Harness::generate(9, Preset::Tiny);
        assert_eq!(total_users, h.test_cases().len());
    }

    #[test]
    fn three_series_same_bins() {
        let f = fig();
        assert_eq!(f.series.len(), 3);
        for s in &f.series {
            assert_eq!(s.binned.len(), f.bins.len());
            for (b, bin) in s.binned.iter().zip(&f.bins) {
                assert_eq!(&b.bin, bin);
            }
        }
    }

    #[test]
    fn table_and_csv_render() {
        let f = fig();
        assert_eq!(f.table().len(), f.bins.len());
        let csv = f.to_csv();
        assert_eq!(csv.lines().count(), 1 + 3 * f.bins.len());
    }
}
