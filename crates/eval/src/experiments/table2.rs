//! Table 2: average wall-clock time of the training and recommendation
//! phases.
//!
//! Paper's reference values (their workstation): Random — / 0.04 s,
//! Closest — / 0.04 s, BPR 30.55 s / 0.05 s. The shape to preserve: BPR's
//! training dominates everything else by orders of magnitude, while
//! per-user recommendation latency is similar (and small) across
//! algorithms. "—" entries are algorithms without a proper training phase;
//! Closest Items' one-off catalogue encoding is reported separately since
//! the paper folds it into preprocessing.

use crate::harness::{Harness, TrainedSuite};
use rm_core::Recommender;
use rm_util::report::Table;
use std::time::Duration;

/// One algorithm's timings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Row {
    /// Display name.
    pub name: String,
    /// Training wall-clock (`None` = no proper training phase).
    pub training: Option<Duration>,
    /// Mean per-user recommendation latency.
    pub recommendation: Duration,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table2 {
    /// Rows in the paper's order (Random, Closest, BPR).
    pub rows: Vec<Row>,
    /// One-off catalogue-encoding time of Closest Items (preprocessing,
    /// kept out of the table proper as the paper does).
    pub closest_encoding: Duration,
    /// List length used for the recommendation timing.
    pub k: usize,
}

/// Runs the timing experiment over at most `sample` evaluation users.
#[must_use]
pub fn run(harness: &Harness, suite: &TrainedSuite, k: usize, sample: usize) -> Table2 {
    let rows = vec![
        Row {
            name: suite.random.name().to_owned(),
            training: None,
            recommendation: harness.recommendation_time(&suite.random, k, sample),
        },
        Row {
            name: suite.closest.name().to_owned(),
            training: None,
            recommendation: harness.recommendation_time(&suite.closest, k, sample),
        },
        Row {
            name: suite.bpr.name().to_owned(),
            training: Some(suite.fit_times[3]),
            recommendation: harness.recommendation_time(&suite.bpr, k, sample),
        },
    ];
    Table2 {
        rows,
        closest_encoding: suite.fit_times[2],
        k,
    }
}

impl Table2 {
    /// Renders the paper-style table (seconds; recommendation latencies
    /// keep six decimals — ours are microseconds where the paper's Python
    /// stack reported tens of milliseconds).
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["Time needed for:", "Training (s)", "Recommendation (s)"]);
        for row in &self.rows {
            t.push_row([
                row.name.clone(),
                row.training
                    .map_or_else(|| "-".to_owned(), |d| format!("{:.2}", d.as_secs_f64())),
                format!("{:.6}", row.recommendation.as_secs_f64()),
            ]);
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_core::bpr::BprConfig;
    use rm_datagen::Preset;
    use rm_dataset::summary::SummaryFields;

    fn quick() -> Table2 {
        let h = Harness::generate(4, Preset::Tiny);
        let suite = TrainedSuite::train(
            &h,
            BprConfig {
                factors: 4,
                epochs: 3,
                ..BprConfig::default()
            },
            SummaryFields::BEST,
            5,
        );
        run(&h, &suite, 10, 20)
    }

    #[test]
    fn shape_matches_paper() {
        let t = quick();
        assert_eq!(t.rows.len(), 3);
        assert_eq!(t.rows[0].training, None);
        assert_eq!(t.rows[1].training, None);
        assert!(t.rows[2].training.is_some());
        // BPR training dominates any recommendation latency.
        assert!(t.rows[2].training.unwrap() > t.rows[2].recommendation);
    }

    #[test]
    fn latencies_are_measured() {
        let t = quick();
        for row in &t.rows {
            assert!(row.recommendation > Duration::ZERO, "{}", row.name);
        }
    }

    #[test]
    fn renders_with_dashes() {
        let t = quick();
        let s = t.table().render();
        assert!(s.contains('-'));
        assert!(s.contains("Training (s)"));
    }
}
