//! Fig. 5: Closest Items KPIs at k = 20 as the *metadata summary*
//! composition varies (Section 6.2).
//!
//! Paper's finding, in order of quality: title ≈ random < plot ≈ keywords
//! < authors < authors+genres (best); adding keywords to the best combo
//! slightly hurts.

use super::kpi;
use crate::harness::Harness;
use crate::metrics::{default_threads, evaluate_parallel, Kpis};
use rm_core::closest::ClosestItems;
use rm_core::Recommender;
use rm_dataset::summary::SummaryFields;
use rm_embed::EncoderConfig;
use rm_util::report::Table;

/// The default variant list: the paper's Fig. 5 bars plus the
/// authors+genres+keywords combination discussed in the text.
#[must_use]
pub fn paper_variants() -> Vec<SummaryFields> {
    vec![
        SummaryFields::TITLE,
        SummaryFields::PLOT,
        SummaryFields::KEYWORDS,
        SummaryFields::AUTHORS,
        SummaryFields::GENRES,
        SummaryFields::AUTHORS.with(SummaryFields::GENRES),
        SummaryFields::AUTHORS
            .with(SummaryFields::GENRES)
            .with(SummaryFields::KEYWORDS),
    ]
}

/// One variant's result.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// The metadata fields.
    pub fields: SummaryFields,
    /// KPIs at the experiment's k.
    pub kpis: Kpis,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig5 {
    /// List length (paper: 20).
    pub k: usize,
    /// One row per variant, in input order.
    pub rows: Vec<Row>,
}

/// Runs the ablation: builds, fits, and evaluates one Closest Items
/// instance per variant. Each variant re-fits its own IDF model, exactly
/// as a fresh deployment of that summary would.
#[must_use]
pub fn run(harness: &Harness, variants: &[SummaryFields], k: usize) -> Fig5 {
    let cases = harness.test_cases();
    let rows = variants
        .iter()
        .map(|&fields| {
            let mut ci =
                ClosestItems::from_corpus(&harness.corpus, fields, EncoderConfig::default());
            ci.fit(&harness.split.train);
            Row {
                fields,
                kpis: evaluate_parallel(&ci, &cases, k, default_threads()),
            }
        })
        .collect();
    Fig5 { k, rows }
}

impl Fig5 {
    /// Renders the grouped-bar values.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["metadata summary", "URR", "NRR", "P", "R", "FR"]);
        for row in &self.rows {
            t.push_row([
                row.fields.label(),
                kpi(row.kpis.urr),
                kpi(row.kpis.nrr),
                kpi(row.kpis.precision),
                kpi(row.kpis.recall),
                format!("{:.0}", row.kpis.first_rank),
            ]);
        }
        t
    }

    /// `summary,urr,nrr,precision,recall,first_rank` CSV.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut out = String::from("summary,urr,nrr,precision,recall,first_rank\n");
        for row in &self.rows {
            out.push_str(&format!(
                "{},{:.6},{:.6},{:.6},{:.6},{:.2}\n",
                row.fields.label(),
                row.kpis.urr,
                row.kpis.nrr,
                row.kpis.precision,
                row.kpis.recall,
                row.kpis.first_rank
            ));
        }
        out
    }

    /// The row of a given field combination.
    #[must_use]
    pub fn row(&self, fields: SummaryFields) -> Option<&Row> {
        self.rows.iter().find(|r| r.fields == fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_datagen::Preset;

    fn fig() -> Fig5 {
        let h = Harness::generate(12, Preset::Tiny);
        run(&h, &paper_variants(), 10)
    }

    #[test]
    fn all_variants_evaluated() {
        let f = fig();
        assert_eq!(f.rows.len(), 7);
        assert!(f.row(SummaryFields::BEST).is_some());
    }

    #[test]
    fn authors_beat_title() {
        let f = fig();
        let title = f.row(SummaryFields::TITLE).unwrap().kpis.nrr;
        let authors = f.row(SummaryFields::AUTHORS).unwrap().kpis.nrr;
        assert!(
            authors > title,
            "authors NRR {authors} should beat title NRR {title}"
        );
    }

    #[test]
    fn table_lists_labels() {
        let f = fig();
        let s = f.table().render();
        assert!(s.contains("authors+genres"));
        assert!(s.contains("title"));
    }
}
