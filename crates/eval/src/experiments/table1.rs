//! Table 1: URR / NRR / P / R / FR of every recommender at k = 20.
//!
//! Paper's reference values (k = 20):
//!
//! | | URR | NRR | P | R | FR |
//! |---|---|---|---|---|---|
//! | Random Items | 0.07 | 0.07 | 0.00 | 0.01 | 370 |
//! | Most Read Items | 0.03 | 0.03 | 0.00 | 0.01 | 556 |
//! | Closest Items | 0.22 | 0.29 | 0.01 | 0.05 | 186 |
//! | BPR | 0.26 | 0.35 | 0.02 | 0.08 | 130 |
//! | BPR (BCT only) | 0.15 | 0.17 | 0.01 | 0.04 | 298 |
//!
//! The target *shape*: MostRead ≤ Random ≪ Closest < BPR, and BPR trained
//! on BCT users alone well below full BPR.

use super::kpi;
use crate::harness::{Harness, TrainedSuite};
use crate::metrics::{default_threads, evaluate_parallel, Kpis};
use rm_core::bpr::BprConfig;
use rm_core::Recommender;
use rm_util::report::Table;

/// One recommender's row.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Display name.
    pub name: String,
    /// KPIs at the experiment's k.
    pub kpis: Kpis,
}

/// The experiment result.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// Recommendation list length (paper: 20).
    pub k: usize,
    /// Rows in the paper's order.
    pub rows: Vec<Row>,
}

/// Runs the experiment: evaluates the trained suite plus the BCT-only BPR
/// variant at `k`.
#[must_use]
pub fn run(
    harness: &Harness,
    suite: &TrainedSuite,
    bct_only_config: BprConfig,
    k: usize,
) -> Table1 {
    let cases = harness.test_cases();
    let mut rows: Vec<Row> = [
        (&suite.random as &(dyn Recommender + Sync)),
        &suite.most_read,
        &suite.closest,
        &suite.bpr,
    ]
    .into_iter()
    .map(|rec| Row {
        name: rec.name().to_owned(),
        kpis: evaluate_parallel(rec, &cases, k, default_threads()),
    })
    .collect();

    let (bct_bpr, bct_cases) = harness.bct_only_bpr(bct_only_config);
    rows.push(Row {
        name: "BPR (BCT only)".to_owned(),
        kpis: evaluate_parallel(&bct_bpr, &bct_cases, k, default_threads()),
    });

    Table1 { k, rows }
}

impl Table1 {
    /// Renders the paper-style table.
    #[must_use]
    pub fn table(&self) -> Table {
        let mut t = Table::new(["", "URR", "NRR", "P", "R", "FR"]);
        for row in &self.rows {
            t.push_row([
                row.name.clone(),
                kpi(row.kpis.urr),
                kpi(row.kpis.nrr),
                kpi(row.kpis.precision),
                kpi(row.kpis.recall),
                format!("{:.0}", row.kpis.first_rank),
            ]);
        }
        t
    }

    /// Fetches a row by name.
    #[must_use]
    pub fn row(&self, name: &str) -> Option<&Row> {
        self.rows.iter().find(|r| r.name == name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rm_datagen::Preset;
    use rm_dataset::summary::SummaryFields;

    fn quick() -> Table1 {
        let h = Harness::generate(3, Preset::Tiny);
        let config = BprConfig {
            factors: 8,
            epochs: 8,
            ..BprConfig::default()
        };
        let suite = TrainedSuite::train(&h, config.clone(), SummaryFields::BEST, 5);
        run(&h, &suite, config, 10)
    }

    #[test]
    fn has_all_five_rows() {
        let t = quick();
        let names: Vec<&str> = t.rows.iter().map(|r| r.name.as_str()).collect();
        assert_eq!(
            names,
            vec![
                "Random Items",
                "Most Read Items",
                "Closest Items",
                "BPR",
                "BPR (BCT only)"
            ]
        );
    }

    #[test]
    fn kpis_in_valid_ranges() {
        let t = quick();
        for row in &t.rows {
            assert!(
                (0.0..=1.0).contains(&row.kpis.urr),
                "{}: {:?}",
                row.name,
                row.kpis
            );
            assert!(
                row.kpis.nrr >= row.kpis.urr - 1e-12,
                "NRR >= URR by definition"
            );
            assert!((0.0..=1.0).contains(&row.kpis.precision));
            assert!((0.0..=1.0).contains(&row.kpis.recall));
            assert!(row.kpis.first_rank >= 1.0);
            assert!(row.kpis.n_users > 0);
        }
    }

    #[test]
    fn renders_paper_shape() {
        let t = quick();
        let rendered = t.table().render();
        assert!(rendered.contains("URR"));
        assert!(rendered.contains("BPR (BCT only)"));
        assert_eq!(rendered.lines().count(), 2 + 5);
    }

    #[test]
    fn row_lookup() {
        let t = quick();
        assert!(t.row("BPR").is_some());
        assert!(t.row("nope").is_none());
    }
}
