//! Evaluation harness (Section 5) and experiment runners (Section 6).
//!
//! * [`split`] — the paper's per-user splits: for each BCT user 20 % of
//!   readings are held out as test, the remainder is split 80/20 into
//!   train/validation; Anobii users contribute train/validation only.
//! * [`metrics`] — the five KPIs: URR (Eq. 4), NRR (Eq. 5), Precision
//!   (Eq. 6), Recall (Eq. 7), and the Average First Rank position.
//! * [`groups`] — user grouping by training-history size (Fig. 4's
//!   equal-population bins).
//! * [`harness`] — end-to-end context: generate corpus → split → train →
//!   evaluate, with wall-clock timing for Table 2 and a per-stage
//!   pipeline timer ([`harness::run_timed_pipeline`]).
//! * [`beyond`] — the beyond-accuracy metrics (diversity, novelty,
//!   serendipity, genre coverage) the paper names as future work.
//! * [`bootstrap`] — percentile bootstrap confidence intervals over users,
//!   including paired difference intervals for system comparisons.
//! * [`experiments`] — one runner per table/figure of the paper, each
//!   returning structured results plus a rendered report table.

pub mod beyond;
pub mod bootstrap;
pub mod experiments;
pub mod groups;
pub mod harness;
pub mod metrics;
pub mod split;

pub use harness::{run_timed_pipeline, PipelineTimer, TimedPipeline};
pub use metrics::{Kpis, UserCase};
pub use split::{Split, SplitConfig, SplitStrategy};
