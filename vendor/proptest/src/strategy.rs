//! Value-generation strategies.
//!
//! A [`Strategy`] deterministically maps an RNG stream to a value. Unlike
//! the real proptest there is no shrinking tree — `generate` returns the
//! final value directly.

use crate::test_runner::TestRng;
use rand::RngExt;
use std::ops::{Range, RangeInclusive};

/// A source of generated values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_for_float_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_strategy_for_float_ranges!(f32, f64);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Length specification accepted by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct LenRange {
    lo: usize,
    /// Exclusive upper bound.
    hi: usize,
}

impl From<usize> for LenRange {
    fn from(n: usize) -> Self {
        Self { lo: n, hi: n + 1 }
    }
}

impl From<Range<usize>> for LenRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty length range");
        Self {
            lo: r.start,
            hi: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for LenRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty length range");
        Self {
            lo: *r.start(),
            hi: *r.end() + 1,
        }
    }
}

impl LenRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        rng.random_range(self.lo..self.hi)
    }
}

/// Strategy for `Vec<S::Value>` (see [`crate::collection::vec`]).
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) len: LenRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.draw(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

/// String strategies from a character-class pattern.
///
/// Supports the single form the workspace uses — `[class]{m}` /
/// `[class]{m,n}` where the class lists literal characters and `a-z`
/// ranges — plus plain literals (generated verbatim). This is a tiny
/// subset of the real crate's full regex support.
impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        match parse_class_pattern(self) {
            Some((alphabet, lo, hi)) => {
                let n = rng.random_range(lo..=hi);
                (0..n)
                    .map(|_| alphabet[rng.random_range(0..alphabet.len())])
                    .collect()
            }
            None => (*self).to_owned(),
        }
    }
}

/// Parses `[class]{m}` or `[class]{m,n}` into (alphabet, min, max);
/// `None` when the pattern is not of that shape.
fn parse_class_pattern(pattern: &str) -> Option<(Vec<char>, usize, usize)> {
    let rest = pattern.strip_prefix('[')?;
    let close = rest.find(']')?;
    let class: Vec<char> = rest[..close].chars().collect();
    let quant = rest[close + 1..].strip_prefix('{')?.strip_suffix('}')?;

    let mut alphabet = Vec::new();
    let mut i = 0;
    while i < class.len() {
        // `a-z` range (a dash at either end is a literal dash).
        if i + 2 < class.len() && class[i + 1] == '-' {
            let (lo, hi) = (class[i], class[i + 2]);
            assert!(lo <= hi, "inverted character range {lo}-{hi}");
            for c in lo..=hi {
                alphabet.push(c);
            }
            i += 3;
        } else {
            alphabet.push(class[i]);
            i += 1;
        }
    }
    assert!(!alphabet.is_empty(), "empty character class in {pattern}");

    let (lo, hi) = match quant.split_once(',') {
        Some((a, b)) => (a.trim().parse().ok()?, b.trim().parse().ok()?),
        None => {
            let n = quant.trim().parse().ok()?;
            (n, n)
        }
    };
    assert!(lo <= hi, "inverted repetition {{{lo},{hi}}} in {pattern}");
    Some((alphabet, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn parse_forms() {
        let (alpha, lo, hi) = parse_class_pattern("[a-c.]{0,9}").unwrap();
        assert_eq!(alpha, vec!['a', 'b', 'c', '.']);
        assert_eq!((lo, hi), (0, 9));
        let (_, lo, hi) = parse_class_pattern("[x]{5}").unwrap();
        assert_eq!((lo, hi), (5, 5));
        assert!(parse_class_pattern("plain text").is_none());
    }

    #[test]
    fn trailing_dash_is_literal() {
        let (alpha, _, _) = parse_class_pattern("[a-c-]{1}").unwrap();
        assert!(alpha.contains(&'-'));
    }

    #[test]
    fn tuple_and_range_strategies_compose() {
        let mut rng = TestRng::for_case(5);
        let (a, b, c) = (0u32..3, 10i64..20, 0.0f64..1.0).generate(&mut rng);
        assert!(a < 3);
        assert!((10..20).contains(&b));
        assert!((0.0..1.0).contains(&c));
    }

    #[test]
    fn fixed_len_vec() {
        let strat = VecStrategy {
            element: 0u8..=255,
            len: LenRange::from(4usize),
        };
        assert_eq!(strat.generate(&mut TestRng::for_case(1)).len(), 4);
    }
}
