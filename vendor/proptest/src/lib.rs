//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements the subset of proptest the workspace's tests use: the
//! [`proptest!`] macro, `prop_assert*` assertions, integer/float range
//! strategies, tuples, [`collection::vec`], `num::<int>::ANY`, and a small
//! character-class subset of string (regex) strategies.
//!
//! Semantics differ from the real crate in two deliberate ways: failing
//! cases are *not* shrunk (the failing input is printed as-is), and the
//! per-test RNG is seeded deterministically from the case index, so a
//! failure always reproduces. The case count defaults to 64 and honours
//! `PROPTEST_CASES`.

pub mod strategy;
pub mod test_runner;

/// Strategies for collections.
pub mod collection {
    use crate::strategy::{LenRange, Strategy, VecStrategy};

    /// A strategy producing `Vec`s whose elements come from `element` and
    /// whose length is drawn from `len` (a `usize` or a range of `usize`).
    pub fn vec<S: Strategy>(element: S, len: impl Into<LenRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            len: len.into(),
        }
    }
}

/// Per-type "any value" strategies, named like the real crate's modules.
pub mod num {
    macro_rules! any_mod {
        ($($m:ident : $t:ty),*) => {$(
            /// Whole-domain strategy for the primitive of the same name.
            pub mod $m {
                /// Any value of the type, uniformly.
                pub const ANY: core::ops::RangeInclusive<$t> = <$t>::MIN..=<$t>::MAX;
            }
        )*};
    }
    any_mod!(u8: u8, u16: u16, u32: u32, u64: u64, usize: usize, i8: i8, i16: i16, i32: i32, i64: i64);
}

/// The glob-imported surface: the [`Strategy`](crate::strategy::Strategy)
/// trait and the test macros.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Each test body runs once per case (64 by default, `PROPTEST_CASES` to
/// override) with inputs generated from a case-indexed deterministic RNG.
/// `prop_assert*` failures abort the case with the generated inputs
/// printed; there is no shrinking.
#[macro_export]
macro_rules! proptest {
    ($($(#[$attr:meta])* fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let cases = $crate::test_runner::case_count();
                for case in 0..cases {
                    let mut rng = $crate::test_runner::TestRng::for_case(case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { { $body } ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest case {case}/{cases} failed: {}", e.0);
                    }
                }
            }
        )*
    };
}

/// `assert!` that fails the current proptest case instead of panicking
/// directly (usable only inside [`proptest!`] bodies).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {:?} == {:?}",
                l, r
            )));
        }
    }};
}

/// `assert_ne!` for proptest bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {:?} != {:?}",
                l, r
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    proptest! {
        #[test]
        fn ranges_and_vecs(x in 1u32..7, v in crate::collection::vec(-1.0f32..1.0, 3..9)) {
            prop_assert!((1..7).contains(&x));
            prop_assert!(v.len() >= 3 && v.len() < 9);
            prop_assert!(v.iter().all(|f| (-1.0..1.0).contains(f)));
        }

        #[test]
        fn tuples_and_bytes(p in (0u32..4, 0u32..4), b in crate::num::u8::ANY) {
            prop_assert!(p.0 < 4 && p.1 < 4);
            let _ = b;
        }
    }

    #[test]
    fn string_strategy_respects_class_and_len() {
        let strat = "[a-c0-1 .]{2,5}";
        let mut rng = TestRng::for_case(11);
        for _ in 0..200 {
            let s = strat.generate(&mut rng);
            let n = s.chars().count();
            assert!((2..=5).contains(&n), "bad length {n} for {s:?}");
            assert!(
                s.chars().all(|c| "abc01 .".contains(c)),
                "bad char in {s:?}"
            );
        }
    }

    #[test]
    fn literal_string_strategy_is_identity() {
        let mut rng = TestRng::for_case(0);
        assert_eq!("ciao".generate(&mut rng), "ciao");
    }

    #[test]
    fn generation_is_deterministic_per_case() {
        let strat = crate::collection::vec(0u64..1000, 0..20);
        let a = strat.generate(&mut TestRng::for_case(3));
        let b = strat.generate(&mut TestRng::for_case(3));
        let c = strat.generate(&mut TestRng::for_case(4));
        assert_eq!(a, b);
        assert_ne!(
            TestRng::for_case(3).next_u64(),
            TestRng::for_case(4).next_u64()
        );
        let _ = c;
    }

    #[test]
    fn fixed_length_class() {
        let mut rng = TestRng::for_case(7);
        let s = "[xyz]{4}".generate(&mut rng);
        assert_eq!(s.chars().count(), 4);
    }
}
