//! The minimal runner plumbing behind the [`proptest!`](crate::proptest)
//! macro: a deterministic per-case RNG and the error type `prop_assert*`
//! returns.

use rand::rngs::StdRng;
use rand::SeedableRng;

/// A failed proptest case, carrying the formatted assertion message.
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

/// Result alias for proptest bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The number of cases each property runs: `PROPTEST_CASES` or 64.
#[must_use]
pub fn case_count() -> u64 {
    std::env::var("PROPTEST_CASES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(64)
}

/// Deterministic per-case RNG (no global entropy: a failing case index
/// always reproduces the same inputs).
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// The RNG for one case index.
    #[must_use]
    pub fn for_case(case: u64) -> Self {
        // Offset so case 0 does not collide with common user seeds.
        Self {
            inner: StdRng::seed_from_u64(0x5EED_0000_0000_0000 ^ case),
        }
    }

    /// The next 64 random bits (inherent so callers need no trait import).
    pub fn next_u64(&mut self) -> u64 {
        rand::Rng::next_u64(&mut self.inner)
    }
}

impl rand::Rng for TestRng {
    fn next_u64(&mut self) -> u64 {
        TestRng::next_u64(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_case_count() {
        // The env var is not set in CI runs of this suite.
        if std::env::var("PROPTEST_CASES").is_err() {
            assert_eq!(case_count(), 64);
        }
    }

    #[test]
    fn case_rngs_differ() {
        assert_ne!(
            TestRng::for_case(0).next_u64(),
            TestRng::for_case(1).next_u64()
        );
    }
}
