//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! implements the subset of criterion 0.8 the workspace's benches use:
//! [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`] /
//! [`Bencher::iter_batched`], [`BatchSize`], and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs a short warm-up,
//! then timed batches until a wall-clock budget is spent, and reports the
//! mean / min / max per-iteration time on stdout. There are no statistical
//! regressions, plots, or saved baselines. When the binary is compiled as a
//! `#[test]` harness-less bench under `cargo test`, benches still execute
//! (with a single iteration) so breakage shows up in CI.

use std::time::{Duration, Instant};

/// How [`Bencher::iter_batched`] amortises setup between measurements.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Run setup before every single iteration.
    PerIteration,
    /// Run setup once per small batch of iterations.
    SmallInput,
    /// Run setup once per large batch of iterations.
    LargeInput,
}

/// Timing loop handed to each benchmark closure.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, running it `self.iters` times back-to-back.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs built by `setup`; setup time is excluded.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

#[derive(Debug, Clone, Copy)]
struct Config {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Config {
    fn default() -> Self {
        // Far smaller than the real crate's defaults: these benches run in
        // CI smoke mode, not for publication-grade statistics.
        Self {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
        }
    }
}

/// The benchmark manager: entry point of every bench target.
#[derive(Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        run_benchmark(id, self.config, f);
        self
    }

    /// Starts a named group whose benchmarks share configuration.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        let config = self.config;
        BenchmarkGroup {
            _parent: self,
            name: name.to_owned(),
            config,
        }
    }

    /// Overrides the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.config.sample_size = n;
        self
    }

    /// Overrides the measurement budget per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }
}

/// A set of related benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    config: Config,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample size must be at least 2");
        self.config.sample_size = n;
        self
    }

    /// Overrides the measurement budget for benchmarks in this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    /// Runs one named benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, self.config, f);
        self
    }

    /// Ends the group (kept for API compatibility; nothing to flush).
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, config: Config, mut f: F) {
    // Warm-up: grow the iteration count until the warm-up budget is spent,
    // which also calibrates iterations-per-sample.
    let mut iters: u64 = 1;
    let warm_start = Instant::now();
    let per_iter;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        if warm_start.elapsed() >= config.warm_up_time {
            per_iter =
                b.elapsed.max(Duration::from_nanos(1)) / u32::try_from(iters).unwrap_or(u32::MAX);
            break;
        }
        iters = iters.saturating_mul(2).min(1 << 20);
    }

    let budget_per_sample =
        config.measurement_time / u32::try_from(config.sample_size).unwrap_or(u32::MAX);
    let iters_per_sample =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1 << 20) as u64;

    let mut samples = Vec::with_capacity(config.sample_size);
    for _ in 0..config.sample_size {
        let mut b = Bencher {
            iters: iters_per_sample,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));

    let mean = samples.iter().sum::<f64>() / samples.len() as f64;
    println!(
        "{id:<40} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_seconds(samples[0]),
        fmt_seconds(mean),
        fmt_seconds(*samples.last().unwrap()),
        samples.len(),
        iters_per_sample,
    );
}

fn fmt_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Declares a benchmark group function, mirroring the real crate.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        /// Criterion bench group entry point (generated).
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring the real crate.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        c.sample_size(2).measurement_time(Duration::from_millis(5));
        let mut runs = 0u64;
        c.bench_function("smoke", |b| b.iter(|| runs += 1));
        assert!(runs > 0);
    }

    #[test]
    fn groups_run_batched_benches() {
        let mut c = Criterion::default();
        c.sample_size(2).measurement_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        let mut sum = 0u64;
        group.bench_function("batched", |b| {
            b.iter_batched(|| 3u64, |x| sum += x, BatchSize::PerIteration);
        });
        group.finish();
        assert!(sum > 0);
    }

    #[test]
    fn seconds_formatting() {
        assert_eq!(fmt_seconds(2.0), "2.000 s");
        assert_eq!(fmt_seconds(0.002), "2.000 ms");
        assert_eq!(fmt_seconds(0.000_002), "2.000 us");
        assert!(fmt_seconds(0.000_000_002).ends_with("ns"));
    }
}
