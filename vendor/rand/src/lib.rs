//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! provides exactly the subset of the `rand 0.10` API the workspace uses:
//! the [`Rng`] core trait, the [`RngExt`] extension methods
//! (`random`, `random_range`, `random_bool`), [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom::shuffle`]. The generator behind
//! [`rngs::StdRng`] is xoshiro256++ seeded through SplitMix64 — fast,
//! high-quality, and identical on every platform, which is all the
//! workspace's determinism contracts require (they compare runs against
//! runs, never against golden byte streams from the real crate).

/// Core random-number source: a stream of `u64`s plus derived forms.
pub trait Rng {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly random bits (high half of [`Rng::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A type that can be drawn uniformly from an [`Rng`].
pub trait Random: Sized {
    /// Draws one uniformly random value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_random_int {
    ($($t:ty),*) => {$(
        impl Random for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_lossless)]
            fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_random_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range form that [`RngExt::random_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless, clippy::cast_possible_wrap)]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (self.start as i128 + draw) as $t
            }
        }

        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss, clippy::cast_lossless, clippy::cast_possible_wrap)]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let draw = (u128::from(rng.next_u64()) % span) as i128;
                (start as i128 + draw) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: $t = Random::random(rng);
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// The convenience methods the workspace calls on every RNG.
pub trait RngExt: Rng {
    /// A uniformly random value of `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// A uniformly random value in `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        f64::random(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// An RNG constructible from a seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a `u64` seed (SplitMix64 key expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace-standard generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::{Rng, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(9);
        let mut b = StdRng::seed_from_u64(9);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(10);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: usize = rng.random_range(0..=4);
            assert!(w <= 4);
            let f: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&f));
            let i: i32 = rng.random_range(-10..-2);
            assert!((-10..-2).contains(&i));
        }
    }

    #[test]
    fn unit_floats_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let x: f64 = rng.random();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.random();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(3);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice in order");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(5);
        let _: u32 = rng.random_range(5..5);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut rng = StdRng::seed_from_u64(6);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
